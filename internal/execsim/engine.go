package execsim

import (
	"fmt"
	"math/rand"

	"qporder/internal/lav"
	"qporder/internal/obs"
	"qporder/internal/schema"
)

// Engine executes query plans (conjunctive queries whose body atoms are
// source relations) against a store of source contents. It accounts
// access costs with the paper's parameters (overhead h per access,
// transmission cost α per returned item), optionally simulates per-access
// failures with retries, and optionally caches source-operation results.
type Engine struct {
	cat   *lav.Catalog
	store DB

	// Caching enables the source-operation cache: re-running an identical
	// access (same source, same position, same bound pattern) is free.
	Caching bool
	// OnAccess, when set, is invoked after every real source access (cache
	// hits excluded) with the source name, the number of tuples returned,
	// and the number of failed attempts before success — the feed for
	// adaptive statistics tracking.
	OnAccess func(source string, tuples, failedAttempts int)
	// rng drives failure simulation; nil disables failures.
	rng *rand.Rand

	cache map[string][]schema.Atom

	// Cost is the accumulated execution cost in cost units.
	Cost float64
	// Accesses counts successful source accesses (cache hits excluded).
	Accesses int
	// CacheHits counts accesses served from the cache.
	CacheHits int
	// FailedAttempts counts access attempts lost to simulated failures.
	FailedAttempts int

	cSourceCalls *obs.Counter
	cTuples      *obs.Counter
	cCacheHits   *obs.Counter
	cFailed      *obs.Counter

	// calib, when set, receives one estimate-vs-actual observation per
	// unconstrained source access: the catalog's Tuples statistic
	// against the observed result size. Bound accesses are excluded —
	// their result size measures join selectivity, not source size, so
	// pairing them against Tuples would poison the series (the pairing
	// contract, DESIGN.md). Nil disables recording at zero cost.
	calib *obs.Calibration
}

// NewEngine builds an engine over source contents. The store maps source
// names (catalog names) to their tuples.
func NewEngine(cat *lav.Catalog, store DB) *Engine {
	return &Engine{cat: cat, store: store, cache: make(map[string][]schema.Atom)}
}

// Instrument mirrors the engine's accounting into registry counters
// (execsim.source_calls, execsim.tuples_fetched, execsim.cache_hits,
// execsim.failed_attempts). A nil registry disables the mirroring.
func (e *Engine) Instrument(reg *obs.Registry) {
	e.cSourceCalls = reg.Counter("execsim.source_calls")
	e.cTuples = reg.Counter("execsim.tuples_fetched")
	e.cCacheHits = reg.Counter("execsim.cache_hits")
	e.cFailed = reg.Counter("execsim.failed_attempts")
}

// SetCalibration binds an estimator-calibration accumulator: every
// unconstrained source access records the Tuples estimate against the
// observed result size. Nil detaches (the default, costing nothing).
func (e *Engine) SetCalibration(c *obs.Calibration) { e.calib = c }

// EnableFailures turns on failure simulation with the given seed; each
// access attempt to source V fails independently with V's FailureProb and
// is retried (each failed attempt still pays the access overhead).
func (e *Engine) EnableFailures(seed int64) {
	e.rng = rand.New(rand.NewSource(seed))
}

// ExecutePlan evaluates the plan query with a left-to-right nested-loop
// strategy: each body atom triggers one source operation per distinct
// binding pattern of its bound arguments; returned tuples extend the
// bindings. The distinct head instances are returned.
func (e *Engine) ExecutePlan(pq *schema.Query) ([]schema.Atom, error) {
	for _, a := range pq.Body {
		if _, ok := e.cat.ByName(a.Pred); !ok {
			return nil, fmt.Errorf("execsim: plan atom %s is not a catalog source", a)
		}
	}
	var out []schema.Atom
	seen := make(map[string]bool)
	var rec func(i int, sub schema.Subst) error
	rec = func(i int, sub schema.Subst) error {
		if i == len(pq.Body) {
			head := sub.ApplyAtom(pq.HeadAtom())
			if k := head.String(); !seen[k] {
				seen[k] = true
				out = append(out, head)
			}
			return nil
		}
		goal := sub.ApplyAtom(pq.Body[i])
		matches, err := e.access(i, goal)
		if err != nil {
			return err
		}
		for _, tuple := range matches {
			ext, ok := schema.MatchAtom(goal, tuple, sub)
			if !ok {
				continue
			}
			if err := rec(i+1, ext); err != nil {
				return err
			}
		}
		return nil
	}
	if err := rec(0, schema.Subst{}); err != nil {
		return nil, err
	}
	sortAtoms(out)
	return out, nil
}

// unbound reports whether the access goal constrains no argument — the
// case where the source's Tuples statistic directly estimates the
// result size.
func unbound(goal schema.Atom) bool {
	for _, t := range goal.Args {
		if !t.IsVar() {
			return false
		}
	}
	return true
}

// access performs one source operation: fetch the tuples of goal's source
// matching goal's bound arguments. Costs: overhead per attempt (failures
// retry), transmission cost per returned tuple. With caching on, an
// identical operation is free.
func (e *Engine) access(pos int, goal schema.Atom) ([]schema.Atom, error) {
	key := fmt.Sprintf("%d/%s", pos, goal.String())
	if e.Caching {
		if res, ok := e.cache[key]; ok {
			e.CacheHits++
			e.cCacheHits.Inc()
			return res, nil
		}
	}
	src, _ := e.cat.ByName(goal.Pred)
	st := src.Stats

	// Failure simulation: retry until success, paying overhead each try.
	failed := 0
	if e.rng != nil {
		for e.rng.Float64() < st.FailureProb {
			e.Cost += st.Overhead
			e.FailedAttempts++
			e.cFailed.Inc()
			failed++
		}
	}
	e.Cost += st.Overhead

	var res []schema.Atom
	for _, tuple := range e.store[goal.Pred] {
		if _, ok := schema.MatchAtom(goal, tuple, schema.Subst{}); ok {
			res = append(res, tuple)
		}
	}
	e.Cost += st.TransmitCost * float64(len(res))
	e.Accesses++
	e.cSourceCalls.Inc()
	e.cTuples.Add(int64(len(res)))
	if e.calib != nil && unbound(goal) {
		e.calib.ObserveSource(goal.Pred, st.Tuples, float64(len(res)))
	}
	if e.Caching {
		e.cache[key] = res
	}
	if e.OnAccess != nil {
		e.OnAccess(goal.Pred, len(res), failed)
	}
	return res, nil
}
