package execsim

import (
	"fmt"

	"qporder/internal/physopt"
	"qporder/internal/schema"
)

// ExecutePhysical evaluates a physical plan. Scan steps fetch the
// source's relation once, up front (binding-independent, hence shareable
// through the operation cache); Bind steps push the current bindings into
// the source, one access per distinct binding, exactly like ExecutePlan.
func (e *Engine) ExecutePhysical(p *physopt.Plan) ([]schema.Atom, error) {
	for _, s := range p.Steps {
		if _, ok := e.cat.ByName(s.Atom.Pred); !ok {
			return nil, fmt.Errorf("execsim: plan atom %s is not a catalog source", s.Atom)
		}
	}
	// Pre-fetch every scanned relation (unconditional work).
	scanned := make([][]schema.Atom, len(p.Steps))
	for i, s := range p.Steps {
		if s.Method != physopt.Scan {
			continue
		}
		rows, err := e.access(i, s.Atom)
		if err != nil {
			return nil, err
		}
		scanned[i] = rows
	}

	var out []schema.Atom
	seen := make(map[string]bool)
	var rec func(i int, sub schema.Subst) error
	rec = func(i int, sub schema.Subst) error {
		if i == len(p.Steps) {
			head := sub.ApplyAtom(schema.Atom{Pred: p.Name, Args: p.Head})
			if k := head.String(); !seen[k] {
				seen[k] = true
				out = append(out, head)
			}
			return nil
		}
		step := p.Steps[i]
		goal := sub.ApplyAtom(step.Atom)
		rows := scanned[i]
		if step.Method == physopt.Bind {
			var err error
			rows, err = e.access(i, goal)
			if err != nil {
				return err
			}
		}
		for _, row := range rows {
			if ext, ok := schema.MatchAtom(goal, row, sub); ok {
				if err := rec(i+1, ext); err != nil {
					return err
				}
			}
		}
		return nil
	}
	if err := rec(0, schema.Subst{}); err != nil {
		return nil, err
	}
	sortAtoms(out)
	return out, nil
}
