package execsim

import (
	"fmt"
	"math/rand"

	"qporder/internal/lav"
	"qporder/internal/schema"
)

// RelationSpec describes one mediated-schema relation for world
// generation.
type RelationSpec struct {
	Name  string
	Arity int
}

// WorldConfig parameterizes synthetic world generation.
type WorldConfig struct {
	// Relations lists the schema relations to populate.
	Relations []RelationSpec
	// TuplesPerRelation is the number of tuples per relation.
	TuplesPerRelation int
	// DomainSize is the number of distinct constants per attribute
	// position; smaller values produce more joins.
	DomainSize int
	// Seed drives all randomness.
	Seed int64
}

// GenerateWorld builds a random ground database over the schema
// relations. Constants are "c0".."c<DomainSize-1>", shared across
// relations and positions so joins have matches.
func GenerateWorld(cfg WorldConfig) DB {
	rng := rand.New(rand.NewSource(cfg.Seed))
	db := make(DB)
	for _, rel := range cfg.Relations {
		seen := make(map[string]bool)
		for len(db[rel.Name]) < cfg.TuplesPerRelation {
			vals := make([]string, rel.Arity)
			for i := range vals {
				vals[i] = fmt.Sprintf("c%d", rng.Intn(cfg.DomainSize))
			}
			key := fmt.Sprint(vals)
			if seen[key] {
				// Tolerate saturation of small domains.
				if len(seen) >= pow(cfg.DomainSize, rel.Arity) {
					break
				}
				continue
			}
			seen[key] = true
			db.Add(rel.Name, vals...)
		}
	}
	return db
}

func pow(b, e int) int {
	out := 1
	for i := 0; i < e; i++ {
		out *= b
	}
	return out
}

// PopulateSources derives source contents from a world: each source holds
// a random subset of its description's answers on the world, reflecting
// the LAV semantics that sources are sound but incomplete. completeness
// is the inclusion probability per tuple. Sources without descriptions
// are skipped. The returned DB maps source names to tuples.
func PopulateSources(cat *lav.Catalog, world DB, completeness float64, seed int64) DB {
	return PopulateSourcesWith(cat, world, func(string) float64 { return completeness }, seed)
}

// PopulateSourcesWith is PopulateSources with per-source completeness,
// e.g. to make simulated contents consistent with a coverage model.
func PopulateSourcesWith(cat *lav.Catalog, world DB, completeness func(source string) float64, seed int64) DB {
	rng := rand.New(rand.NewSource(seed))
	store := make(DB)
	for _, src := range cat.Sources() {
		if src.Def == nil {
			continue
		}
		c := completeness(src.Name)
		full := Eval(src.Def, world)
		for _, a := range full {
			if rng.Float64() < c {
				store[src.Name] = append(store[src.Name],
					schema.Atom{Pred: src.Name, Args: a.Args})
			}
		}
		if store[src.Name] == nil {
			store[src.Name] = nil // present but possibly empty
		}
	}
	return store
}
