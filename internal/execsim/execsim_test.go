package execsim

import (
	"testing"
	"testing/quick"

	"qporder/internal/lav"
	"qporder/internal/reformulate"
	"qporder/internal/schema"
)

func TestEvalSimpleJoin(t *testing.T) {
	db := make(DB)
	db.Add("edge", "a", "b")
	db.Add("edge", "b", "c")
	db.Add("edge", "c", "d")
	q := schema.MustParseQuery("Q(X, Z) :- edge(X, Y), edge(Y, Z)")
	got := Eval(q, db)
	want := map[string]bool{"Q(a, c)": true, "Q(b, d)": true}
	if len(got) != len(want) {
		t.Fatalf("Eval = %v", got)
	}
	for _, a := range got {
		if !want[a.String()] {
			t.Errorf("unexpected answer %s", a)
		}
	}
}

func TestEvalConstantsAndDedup(t *testing.T) {
	db := make(DB)
	db.Add("play-in", "ford", "starwars")
	db.Add("play-in", "ford", "witness")
	db.Add("play-in", "hamill", "starwars")
	db.Add("review-of", "r1", "starwars")
	db.Add("review-of", "r2", "starwars")
	q := schema.MustParseQuery("Q(M, R) :- play-in(ford, M), review-of(R, M)")
	got := Eval(q, db)
	if len(got) != 2 {
		t.Fatalf("Eval = %v, want 2 answers", got)
	}
}

func TestAnswerSet(t *testing.T) {
	s := NewAnswerSet()
	a := schema.NewAtom("Q", schema.Const("x"))
	b := schema.NewAtom("Q", schema.Const("y"))
	if n := s.Add([]schema.Atom{a, b, a}); n != 2 {
		t.Errorf("Add returned %d, want 2", n)
	}
	if n := s.Add([]schema.Atom{a}); n != 0 {
		t.Errorf("re-Add returned %d, want 0", n)
	}
	if s.Len() != 2 || !s.Contains(a) {
		t.Error("AnswerSet state wrong")
	}
}

func TestGenerateWorldDeterministic(t *testing.T) {
	cfg := WorldConfig{
		Relations:         []RelationSpec{{Name: "r", Arity: 2}},
		TuplesPerRelation: 20,
		DomainSize:        5,
		Seed:              3,
	}
	a, b := GenerateWorld(cfg), GenerateWorld(cfg)
	if a.Size() != b.Size() || a.Size() == 0 {
		t.Fatalf("sizes %d vs %d", a.Size(), b.Size())
	}
	for i := range a["r"] {
		if !a["r"][i].Equal(b["r"][i]) {
			t.Fatal("worlds differ across identical seeds")
		}
	}
}

func TestGenerateWorldSaturatedDomain(t *testing.T) {
	// Domain 2, arity 1 → at most 2 distinct tuples even if 10 requested.
	db := GenerateWorld(WorldConfig{
		Relations:         []RelationSpec{{Name: "u", Arity: 1}},
		TuplesPerRelation: 10,
		DomainSize:        2,
		Seed:              1,
	})
	if len(db["u"]) > 2 {
		t.Errorf("saturated relation has %d tuples", len(db["u"]))
	}
}

// movieFixture builds a catalog, world, and sources for end-to-end tests.
func movieFixture(t *testing.T, completeness float64, seed int64) (*lav.Catalog, DB, DB, *schema.Query) {
	t.Helper()
	cat := lav.NewCatalog()
	stats := lav.Stats{Tuples: 10, TransmitCost: 1, Overhead: 5, FailureProb: 0.3}
	for _, d := range []string{
		"V1(A, M) :- play-in(A, M), american(M)",
		"V3(A, M) :- play-in(A, M)",
		"V4(R, M) :- review-of(R, M)",
		"V5(R, M) :- review-of(R, M)",
	} {
		def := schema.MustParseQuery(d)
		cat.MustAdd(def.Name, def, stats)
	}
	world := GenerateWorld(WorldConfig{
		Relations: []RelationSpec{
			{Name: "play-in", Arity: 2}, {Name: "review-of", Arity: 2}, {Name: "american", Arity: 1},
		},
		TuplesPerRelation: 30,
		DomainSize:        8,
		Seed:              seed,
	})
	store := PopulateSources(cat, world, completeness, seed+1)
	q := schema.MustParseQuery("Q(M, R) :- play-in(A, M), review-of(R, M)")
	return cat, world, store, q
}

// TestPlanAnswersAreSound: every tuple produced by executing a sound plan
// is an answer of the query on the world — the LAV soundness guarantee,
// end to end through reformulation and execution.
func TestPlanAnswersAreSound(t *testing.T) {
	cfg := &quick.Config{MaxCount: 20}
	prop := func(seed int64) bool {
		cat, world, store, q := movieFixture(t, 0.7, seed)
		b, err := reformulate.BuildBuckets(q, cat)
		if err != nil {
			t.Fatal(err)
		}
		pd := reformulate.NewPlanDomain(b, cat)
		queryAnswers := NewAnswerSet()
		queryAnswers.Add(Eval(q, world))
		eng := NewEngine(cat, store)
		for _, p := range pd.Space.Enumerate() {
			sound, err := pd.IsSound(p)
			if err != nil {
				t.Fatal(err)
			}
			if !sound {
				continue
			}
			pq, err := pd.PlanQuery(p)
			if err != nil {
				t.Fatal(err)
			}
			out, err := eng.ExecutePlan(pq)
			if err != nil {
				t.Fatal(err)
			}
			for _, a := range out {
				if !queryAnswers.Contains(schema.Atom{Pred: "Q", Args: a.Args}) {
					t.Logf("seed=%d plan %s produced non-answer %v", seed, pq, a)
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(prop, cfg); err != nil {
		t.Error(err)
	}
}

// TestUnionOfPlansWithCompleteSources: when sources are complete, the
// union over all sound plans recovers every query answer derivable from
// described relations.
func TestUnionOfPlansWithCompleteSources(t *testing.T) {
	cat, world, store, q := movieFixture(t, 1.0, 42)
	b, err := reformulate.BuildBuckets(q, cat)
	if err != nil {
		t.Fatal(err)
	}
	pd := reformulate.NewPlanDomain(b, cat)
	eng := NewEngine(cat, store)
	got := NewAnswerSet()
	for _, p := range pd.Space.Enumerate() {
		sound, err := pd.IsSound(p)
		if err != nil {
			t.Fatal(err)
		}
		if !sound {
			continue
		}
		pq, _ := pd.PlanQuery(p)
		out, err := eng.ExecutePlan(pq)
		if err != nil {
			t.Fatal(err)
		}
		got.Add(out)
	}
	want := Eval(q, world)
	for _, a := range want {
		if !got.Contains(schema.Atom{Pred: "P", Args: a.Args}) {
			// Plans are named P; compare on args via a P-probe.
			t.Errorf("answer %v not recovered by any plan", a)
		}
	}
}

func TestEngineCostAccounting(t *testing.T) {
	cat := lav.NewCatalog()
	def := schema.MustParseQuery("S(X) :- r(X)")
	cat.MustAdd("S", def, lav.Stats{Tuples: 3, TransmitCost: 2, Overhead: 7})
	store := make(DB)
	store.Add("S", "a")
	store.Add("S", "b")
	eng := NewEngine(cat, store)
	pq := schema.MustParseQuery("P(X) :- S(X)")
	out, err := eng.ExecutePlan(pq)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 2 {
		t.Fatalf("got %d answers", len(out))
	}
	// cost = overhead 7 + 2 tuples * 2 = 11.
	if eng.Cost != 11 {
		t.Errorf("Cost = %g, want 11", eng.Cost)
	}
	if eng.Accesses != 1 {
		t.Errorf("Accesses = %d, want 1", eng.Accesses)
	}
}

func TestEngineCaching(t *testing.T) {
	cat := lav.NewCatalog()
	def := schema.MustParseQuery("S(X) :- r(X)")
	cat.MustAdd("S", def, lav.Stats{Tuples: 3, TransmitCost: 2, Overhead: 7})
	store := make(DB)
	store.Add("S", "a")
	eng := NewEngine(cat, store)
	eng.Caching = true
	pq := schema.MustParseQuery("P(X) :- S(X)")
	if _, err := eng.ExecutePlan(pq); err != nil {
		t.Fatal(err)
	}
	c1 := eng.Cost
	if _, err := eng.ExecutePlan(pq); err != nil {
		t.Fatal(err)
	}
	if eng.Cost != c1 {
		t.Errorf("cached re-execution accrued cost: %g -> %g", c1, eng.Cost)
	}
	if eng.CacheHits == 0 {
		t.Error("no cache hits recorded")
	}
}

func TestEngineFailuresRetryAndCost(t *testing.T) {
	cat := lav.NewCatalog()
	def := schema.MustParseQuery("S(X) :- r(X)")
	cat.MustAdd("S", def, lav.Stats{Tuples: 3, TransmitCost: 0, Overhead: 1, FailureProb: 0.8})
	store := make(DB)
	store.Add("S", "a")
	eng := NewEngine(cat, store)
	eng.EnableFailures(7)
	pq := schema.MustParseQuery("P(X) :- S(X)")
	const runs = 25
	for i := 0; i < runs; i++ {
		out, err := eng.ExecutePlan(pq)
		if err != nil {
			t.Fatal(err)
		}
		if len(out) != 1 {
			t.Fatalf("answers = %v", out)
		}
	}
	// With failure probability 0.8, 25 accesses see failures w.p.
	// 1-0.2^25; each failed attempt costs one overhead unit.
	if eng.FailedAttempts == 0 {
		t.Error("expected some failed attempts at p=0.8 over 25 runs")
	}
	if eng.Cost != float64(runs+eng.FailedAttempts) {
		t.Errorf("Cost = %g, want %d", eng.Cost, runs+eng.FailedAttempts)
	}
}

func TestExecutePlanRejectsUnknownSource(t *testing.T) {
	cat := lav.NewCatalog()
	eng := NewEngine(cat, make(DB))
	if _, err := eng.ExecutePlan(schema.MustParseQuery("P(X) :- nosuch(X)")); err == nil {
		t.Error("expected error for unknown source")
	}
}
