package execsim

import (
	"math/rand"
	"testing"
	"testing/quick"

	"qporder/internal/lav"
	"qporder/internal/physopt"
	"qporder/internal/schema"
)

// physFixture builds a two-source chain with contents.
func physFixture() (*lav.Catalog, DB) {
	cat := lav.NewCatalog()
	cat.MustAdd("SA", schema.MustParseQuery("SA(X, Y) :- r0(X, Y)"),
		lav.Stats{Tuples: 100, TransmitCost: 1, Overhead: 5})
	cat.MustAdd("SB", schema.MustParseQuery("SB(X, Y) :- r1(X, Y)"),
		lav.Stats{Tuples: 10, TransmitCost: 1, Overhead: 5})
	store := make(DB)
	store.Add("SA", "a", "m")
	store.Add("SA", "b", "m")
	store.Add("SA", "c", "n")
	store.Add("SB", "m", "r1")
	store.Add("SB", "n", "r2")
	return cat, store
}

func TestExecutePhysicalMatchesLogical(t *testing.T) {
	cat, store := physFixture()
	pq := schema.MustParseQuery("P(X, R) :- SA(X, M), SB(M, R)")
	logical, err := NewEngine(cat, store).ExecutePlan(pq)
	if err != nil {
		t.Fatal(err)
	}
	pp, err := physopt.Optimize(pq, cat, physopt.Params{N: 50})
	if err != nil {
		t.Fatal(err)
	}
	physical, err := NewEngine(cat, store).ExecutePhysical(pp)
	if err != nil {
		t.Fatal(err)
	}
	if len(logical) != len(physical) {
		t.Fatalf("logical %v vs physical %v", logical, physical)
	}
	for i := range logical {
		if !logical[i].Equal(physical[i]) {
			t.Fatalf("answer %d differs: %v vs %v", i, logical[i], physical[i])
		}
	}
}

// TestPhysicalOrderIndependence: random worlds, random chain queries —
// every join order and method mix computes the same answers.
func TestPhysicalOrderIndependence(t *testing.T) {
	cfg := &quick.Config{MaxCount: 30}
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		cat := lav.NewCatalog()
		names := []string{"S0", "S1", "S2"}
		for i, n := range names {
			cat.MustAdd(n, schema.MustParseQuery(n+"(A, B) :- r"+string(rune('0'+i))+"(A, B)"),
				lav.Stats{Tuples: float64(1 + rng.Intn(100)), TransmitCost: 1, Overhead: 1})
		}
		store := make(DB)
		vals := []string{"u", "v", "w", "x"}
		for _, n := range names {
			for k := 0; k < 8; k++ {
				store.Add(n, vals[rng.Intn(4)], vals[rng.Intn(4)])
			}
		}
		pq := schema.MustParseQuery("P(X0, X3) :- S0(X0, X1), S1(X1, X2), S2(X2, X3)")
		want, err := NewEngine(cat, store).ExecutePlan(pq)
		if err != nil {
			t.Fatal(err)
		}
		// Optimizer order with random cache state.
		prm := physopt.Params{N: float64(1 + rng.Intn(100))}
		if rng.Intn(2) == 0 {
			cached := names[rng.Intn(3)]
			prm.CachedScan = func(s string) bool { return s == cached }
		}
		pp, err := physopt.Optimize(pq, cat, prm)
		if err != nil {
			t.Fatal(err)
		}
		got, err := NewEngine(cat, store).ExecutePhysical(pp)
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != len(want) {
			t.Logf("seed %d: %d vs %d answers\nplan:\n%s", seed, len(got), len(want), pp)
			return false
		}
		for i := range want {
			if !want[i].Equal(got[i]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, cfg); err != nil {
		t.Error(err)
	}
}

func TestPhysicalScanIsSharedThroughCache(t *testing.T) {
	cat, store := physFixture()
	pq := schema.MustParseQuery("P(X, R) :- SA(X, M), SB(M, R)")
	// Force a plan that scans SB at step 1.
	pp := &physopt.Plan{
		Name: "P",
		Head: pq.Head,
		Steps: []physopt.Step{
			{Atom: pq.Body[0], Method: physopt.Bind},
			{Atom: pq.Body[1], Method: physopt.Scan},
		},
	}
	eng := NewEngine(cat, store)
	eng.Caching = true
	if _, err := eng.ExecutePhysical(pp); err != nil {
		t.Fatal(err)
	}
	accesses := eng.Accesses
	if _, err := eng.ExecutePhysical(pp); err != nil {
		t.Fatal(err)
	}
	// Second run: the SB scan and the SA fetch hit the cache.
	if eng.Accesses != accesses {
		t.Errorf("second physical run accessed sources: %d -> %d", accesses, eng.Accesses)
	}
	if eng.CacheHits == 0 {
		t.Error("no cache hits recorded")
	}
}

func TestPhysicalBindAccessesPerBinding(t *testing.T) {
	cat, store := physFixture()
	pq := schema.MustParseQuery("P(X, R) :- SA(X, M), SB(M, R)")
	pp := &physopt.Plan{
		Name: "P",
		Head: pq.Head,
		Steps: []physopt.Step{
			{Atom: pq.Body[0], Method: physopt.Scan},
			{Atom: pq.Body[1], Method: physopt.Bind},
		},
	}
	eng := NewEngine(cat, store)
	if _, err := eng.ExecutePhysical(pp); err != nil {
		t.Fatal(err)
	}
	// 1 scan of SA + one bind access per SA tuple (3 tuples, 2 distinct
	// bindings m and n — but bindings are per tuple, not deduplicated).
	if eng.Accesses != 1+3 {
		t.Errorf("accesses = %d, want 4", eng.Accesses)
	}
}
