package execsim

import (
	"fmt"

	"qporder/internal/schema"
)

// EvalProgram evaluates a (possibly recursive) datalog program bottom-up
// to fixpoint using semi-naive evaluation and returns every derived fact,
// grouped by predicate. Body atoms whose predicate is some rule's head
// are intensional; all others are matched against edb. The inverse-rule
// programs of Section 7 (reformulate.DatalogProgram) evaluate directly,
// and recursion — the paper's noted future-work case — is supported,
// e.g. transitive closure.
//
// EvalProgram returns an error for unsafe rules (every rule must satisfy
// Query.Validate).
func EvalProgram(rules []*schema.Query, edb DB) (DB, error) {
	for _, r := range rules {
		if err := r.Validate(); err != nil {
			return nil, fmt.Errorf("execsim: %w", err)
		}
	}
	idb := make(map[string]bool)
	for _, r := range rules {
		idb[r.Name] = true
	}

	// facts: all known atoms (EDB ∪ derived IDB), with dedup indexes.
	facts := make(DB)
	seen := make(map[string]bool)
	add := func(a schema.Atom, into DB) bool {
		k := a.String()
		if seen[k] {
			return false
		}
		seen[k] = true
		facts[a.Pred] = append(facts[a.Pred], a)
		if into != nil {
			into[a.Pred] = append(into[a.Pred], a)
		}
		return true
	}
	for _, atoms := range edb {
		for _, a := range atoms {
			add(a, nil)
		}
	}

	// fire evaluates one rule; the atom at position deltaPos (if >= 0)
	// ranges over delta, the others over all facts. Derived heads that are
	// new go into out.
	fire := func(r *schema.Query, deltaPos int, delta DB, out DB) error {
		var rec func(i int, sub schema.Subst) error
		rec = func(i int, sub schema.Subst) error {
			if i == len(r.Body) {
				head := sub.ApplyAtom(r.HeadAtom())
				for _, t := range head.Args {
					if t.IsVar() {
						return fmt.Errorf("execsim: non-ground derived fact %s from rule %s", head, r)
					}
				}
				add(head, out)
				return nil
			}
			goal := r.Body[i]
			src := facts[goal.Pred]
			if i == deltaPos {
				src = delta[goal.Pred]
			}
			for _, tuple := range src {
				if ext, ok := schema.MatchAtom(goal, tuple, sub); ok {
					if err := rec(i+1, ext); err != nil {
						return err
					}
				}
			}
			return nil
		}
		return rec(0, schema.Subst{})
	}

	// First round: naive evaluation of every rule over the EDB.
	delta := make(DB)
	for _, r := range rules {
		if err := fire(r, -1, nil, delta); err != nil {
			return nil, err
		}
	}
	// Semi-naive iterations: a rule can derive something new only through
	// a body atom matching a fact from the last delta.
	for len(delta) > 0 {
		next := make(DB)
		for _, r := range rules {
			for i, goal := range r.Body {
				if !idb[goal.Pred] {
					continue
				}
				if len(delta[goal.Pred]) == 0 {
					continue
				}
				if err := fire(r, i, delta, next); err != nil {
					return nil, err
				}
			}
		}
		delta = next
	}

	out := make(DB)
	for pred := range idb {
		out[pred] = append([]schema.Atom(nil), facts[pred]...)
		sortAtoms(out[pred])
	}
	return out, nil
}

// FilterAnswers returns the atoms satisfying keep, preserving order.
func FilterAnswers(atoms []schema.Atom, keep func(schema.Atom) bool) []schema.Atom {
	var out []schema.Atom
	for _, a := range atoms {
		if keep(a) {
			out = append(out, a)
		}
	}
	return out
}
