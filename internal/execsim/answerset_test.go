package execsim

import (
	"fmt"
	"testing"

	"qporder/internal/schema"
)

func groundAtom(pred string, vals ...string) schema.Atom {
	args := make([]schema.Term, len(vals))
	for i, v := range vals {
		args[i] = schema.Const(v)
	}
	return schema.Atom{Pred: pred, Args: args}
}

func TestAnswerSetDedup(t *testing.T) {
	s := NewAnswerSet()
	a := groundAtom("ans", "x", "y")
	b := groundAtom("ans", "x", "z")
	if got := s.Add([]schema.Atom{a, b, a}); got != 2 {
		t.Fatalf("Add returned %d fresh, want 2", got)
	}
	if got := s.Add([]schema.Atom{b}); got != 0 {
		t.Fatalf("re-Add returned %d fresh, want 0", got)
	}
	if s.Len() != 2 {
		t.Fatalf("Len=%d, want 2", s.Len())
	}
	if !s.Contains(a) || !s.Contains(b) {
		t.Fatal("Contains misses an added atom")
	}
	if s.Contains(groundAtom("ans", "x", "w")) {
		t.Fatal("Contains reports an atom that was never added")
	}
	// Same arguments under a different predicate is a different answer.
	if s.Contains(groundAtom("other", "x", "y")) {
		t.Fatal("Contains conflates predicates")
	}
}

func TestAnswerSetDistinguishesArity(t *testing.T) {
	// Value keys must not conflate a short atom with a longer one that
	// shares its prefix (the inline key zero-pads unused slots).
	s := NewAnswerSet()
	short := groundAtom("p", "a")
	long := groundAtom("p", "a", "")
	if s.Add([]schema.Atom{short, long}) != 2 {
		t.Fatal("atoms differing only in arity conflated")
	}
}

func TestAnswerSetWideAtoms(t *testing.T) {
	vals := make([]string, atomKeyArity+3)
	for i := range vals {
		vals[i] = fmt.Sprintf("c%d", i)
	}
	wide := groundAtom("w", vals...)
	s := NewAnswerSet()
	if s.Add([]schema.Atom{wide, wide}) != 1 {
		t.Fatal("wide atom not deduplicated")
	}
	if !s.Contains(wide) {
		t.Fatal("Contains misses a wide atom")
	}
	if s.Len() != 1 {
		t.Fatalf("Len=%d, want 1", s.Len())
	}
}

// TestAnswerSetAddAllocs is the satellite gate: re-adding answers the
// set already holds — the common case when later plans re-derive
// earlier plans' tuples — must not allocate (the value key replaced the
// per-Add Atom.String rendering).
func TestAnswerSetAddAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are meaningless under -race")
	}
	s := NewAnswerSet()
	batch := make([]schema.Atom, 64)
	for i := range batch {
		batch[i] = groundAtom("ans", fmt.Sprintf("a%d", i), fmt.Sprintf("b%d", i))
	}
	s.Add(batch)
	if got := testing.AllocsPerRun(100, func() {
		if s.Add(batch) != 0 {
			t.Fatal("batch unexpectedly fresh")
		}
	}); got != 0 {
		t.Fatalf("duplicate Add allocates %.1f allocs/run, want 0", got)
	}
	if got := testing.AllocsPerRun(100, func() {
		if !s.Contains(batch[0]) {
			t.Fatal("Contains misses a held atom")
		}
	}); got != 0 {
		t.Fatalf("Contains allocates %.1f allocs/run, want 0", got)
	}
}
