// Package reformulate translates a user query over the mediated schema
// into query plans over the sources. It implements the bucket algorithm
// [16] used throughout the paper, plan expansion and the containment-based
// soundness test, and a MiniCon-style generalized-bucket builder
// (Section 7).
package reformulate

import (
	"fmt"

	"qporder/internal/containment"
	"qporder/internal/lav"
	"qporder/internal/schema"
)

// Entry is one way a source can answer one subgoal: the source plus its
// head atom instantiated by the unifier between the subgoal and a body
// atom of the source description.
type Entry struct {
	// Source is the underlying catalog source.
	Source *lav.Source
	// Subgoal is the index of the query subgoal this entry answers.
	Subgoal int
	// Atom is the instantiated source head, e.g. V1(ford, M): the atom the
	// plan will contain at this position.
	Atom schema.Atom
}

// Buckets is the result of the bucket-creation step: Buckets[i] lists the
// entries that can answer subgoal i.
type Buckets struct {
	Query   *schema.Query
	Entries [][]Entry
}

// BuildBuckets runs the bucket-creation step of the bucket algorithm: for
// each subgoal of q, collect every (source, body atom) pair whose atom
// unifies with the subgoal such that the subgoal's distinguished query
// variables map to distinguished variables of the source (otherwise the
// source cannot return the needed attribute). Sources without descriptions
// are skipped.
func BuildBuckets(q *schema.Query, cat *lav.Catalog) (*Buckets, error) {
	if err := q.Validate(); err != nil {
		return nil, err
	}
	b := &Buckets{Query: q, Entries: make([][]Entry, len(q.Body))}
	for gi, goal := range q.Body {
		for _, src := range cat.Sources() {
			if src.Def == nil {
				continue
			}
			def := src.Def.Rename(fmt.Sprintf("_v%d_%d", src.ID, gi))
			existential := def.ExistentialVars()
			for _, atom := range def.Body {
				sub, ok := schema.UnifyAtoms(atom, goal, schema.Subst{})
				if !ok {
					continue
				}
				if !headVarsPreserved(q, goal, sub, existential) {
					continue
				}
				// Plan atoms reference the source by catalog name, so the
				// same description shared by several sources stays
				// unambiguous.
				head := schema.Atom{Pred: src.Name, Args: def.Head}
				b.Entries[gi] = append(b.Entries[gi], Entry{
					Source:  src,
					Subgoal: gi,
					Atom:    sub.ApplyAtom(head),
				})
			}
		}
	}
	for gi := range b.Entries {
		if len(b.Entries[gi]) == 0 {
			return nil, fmt.Errorf("reformulate: no source can answer subgoal %d (%s)",
				gi, q.Body[gi])
		}
	}
	return b, nil
}

// headVarsPreserved checks the bucket algorithm's pruning condition: a
// query variable of the subgoal that the query needs outside this atom
// (it is distinguished, or joins with other subgoals) must not be mapped
// to an existential variable of the view, since the source then cannot
// return its value.
func headVarsPreserved(q *schema.Query, goal schema.Atom, sub schema.Subst,
	viewExistential []schema.Term) bool {
	needed := neededVars(q, goal)
	// Unification binds view variables to query terms, so an existential
	// view variable standing for a needed query variable shows up as
	// y(view) → x(query); the reverse direction guards against chains.
	for _, y := range viewExistential {
		img := sub.Resolve(y)
		if img.IsVar() && termIn(needed, img) {
			return false
		}
	}
	for _, x := range needed {
		img := sub.Resolve(x)
		if img.IsVar() && termIn(viewExistential, img) {
			return false
		}
	}
	return true
}

// neededVars returns the variables of goal that the query uses elsewhere:
// head variables and variables shared with other subgoals.
func neededVars(q *schema.Query, goal schema.Atom) []schema.Term {
	var goalVars []schema.Term
	goalVars = goal.Vars(goalVars)
	var out []schema.Term
	head := q.DistinguishedVars()
	for _, v := range goalVars {
		if termIn(head, v) {
			out = append(out, v)
			continue
		}
		for _, other := range q.Body {
			if other.Equal(goal) {
				continue
			}
			var ovs []schema.Term
			ovs = other.Vars(ovs)
			if termIn(ovs, v) {
				out = append(out, v)
				break
			}
		}
	}
	return out
}

func termIn(ts []schema.Term, t schema.Term) bool {
	for _, x := range ts {
		if x == t {
			return true
		}
	}
	return false
}

// PlanQuery assembles the conjunctive plan for one entry per subgoal:
// P(Ȳ) :- V1(Ū1), ..., Vn(Ūn). It returns an error when the plan is
// unsafe (a head variable not provided by any entry), which also means it
// cannot be sound.
func (b *Buckets) PlanQuery(choice []Entry) (*schema.Query, error) {
	if len(choice) != len(b.Entries) {
		return nil, fmt.Errorf("reformulate: plan has %d entries, query has %d subgoals",
			len(choice), len(b.Entries))
	}
	p := &schema.Query{
		Name: "P",
		Head: append([]schema.Term(nil), b.Query.Head...),
		Body: make([]schema.Atom, len(choice)),
	}
	for i, e := range choice {
		p.Body[i] = e.Atom.Clone()
	}
	if !p.IsSafe() {
		return nil, fmt.Errorf("reformulate: plan %s is unsafe", p)
	}
	return p, nil
}

// Expand replaces every source atom of a plan with the source's
// description body, with head variables bound to the atom's arguments and
// existential variables freshened per occurrence. The result is a query
// over schema relations.
func Expand(plan *schema.Query, cat *lav.Catalog) (*schema.Query, error) {
	exp := &schema.Query{Name: plan.Name, Head: append([]schema.Term(nil), plan.Head...)}
	for i, atom := range plan.Body {
		src, ok := cat.ByName(atom.Pred)
		if !ok || src.Def == nil {
			return nil, fmt.Errorf("reformulate: atom %s is not a described source", atom)
		}
		def := src.Def.Rename(fmt.Sprintf("_e%d", i))
		head := schema.Atom{Pred: src.Name, Args: def.Head}
		sub, ok := schema.UnifyAtoms(head, atom, schema.Subst{})
		if !ok {
			return nil, fmt.Errorf("reformulate: atom %s does not match head of %s", atom, def)
		}
		for _, ba := range def.Body {
			exp.Body = append(exp.Body, sub.ApplyAtom(ba))
		}
	}
	return exp, nil
}

// IsSound reports whether the plan is sound for the query: every answer
// the plan produces (on any source contents consistent with the
// descriptions) is an answer of the query. By the LAV semantics this is
// containment of the plan's expansion in the query.
func IsSound(plan, q *schema.Query, cat *lav.Catalog) (bool, error) {
	exp, err := Expand(plan, cat)
	if err != nil {
		return false, err
	}
	return containment.Contains(exp, q), nil
}
