package reformulate

import (
	"testing"

	"qporder/internal/containment"
	"qporder/internal/lav"
	"qporder/internal/schema"
)

// movieCatalog builds the Figure 1 domain: V1-V3 over play-in (V1
// american, V2 russian, V3 unrestricted) and V4-V6 over review-of.
func movieCatalog(t *testing.T) *lav.Catalog {
	t.Helper()
	cat := lav.NewCatalog()
	defs := []string{
		"V1(A, M) :- play-in(A, M), american(M)",
		"V2(A, M) :- play-in(A, M), russian(M)",
		"V3(A, M) :- play-in(A, M)",
		"V4(R, M) :- review-of(R, M)",
		"V5(R, M) :- review-of(R, M)",
		"V6(R, M) :- review-of(R, M)",
	}
	stats := lav.Stats{Tuples: 100, TransmitCost: 1, Overhead: 10}
	for _, d := range defs {
		def := schema.MustParseQuery(d)
		cat.MustAdd(def.Name, def, stats)
	}
	return cat
}

func movieQuery() *schema.Query {
	return schema.MustParseQuery(`Q(M, R) :- play-in(ford, M), review-of(R, M)`)
}

func TestBuildBucketsMovieDomain(t *testing.T) {
	cat := movieCatalog(t)
	b, err := BuildBuckets(movieQuery(), cat)
	if err != nil {
		t.Fatal(err)
	}
	if got := len(b.Entries); got != 2 {
		t.Fatalf("got %d buckets, want 2", got)
	}
	if got := len(b.Entries[0]); got != 3 {
		t.Errorf("bucket 1 has %d entries, want 3 (V1,V2,V3): %v", got, b.Entries[0])
	}
	if got := len(b.Entries[1]); got != 3 {
		t.Errorf("bucket 2 has %d entries, want 3 (V4,V5,V6): %v", got, b.Entries[1])
	}
	// The first bucket's atoms must bind the actor position to ford.
	for _, e := range b.Entries[0] {
		if a := e.Atom.Args[0]; !a.Const || a.Name != "ford" {
			t.Errorf("entry %s: first argument = %v, want constant ford", e.Atom, a)
		}
	}
}

func TestAllMoviePlansAreSound(t *testing.T) {
	cat := movieCatalog(t)
	q := movieQuery()
	b, err := BuildBuckets(q, cat)
	if err != nil {
		t.Fatal(err)
	}
	pd := NewPlanDomain(b, cat)
	if got := pd.Space.Size(); got != 9 {
		t.Fatalf("plan space has %d plans, want 9", got)
	}
	for _, p := range pd.Space.Enumerate() {
		sound, err := pd.IsSound(p)
		if err != nil {
			t.Fatal(err)
		}
		if !sound {
			pq, _ := pd.PlanQuery(p)
			t.Errorf("plan %s unexpectedly unsound", pq)
		}
	}
}

func TestUnsoundPlanFiltered(t *testing.T) {
	// Classic unsound candidate: the query asks for actors of the specific
	// movie starwars; W1 stores actors of arbitrary movies with the movie
	// projected away, so W1 cannot enforce the constant and its plan is
	// unsound. W2 stores exactly starwars actors and is sound.
	cat := lav.NewCatalog()
	stats := lav.Stats{Tuples: 10, TransmitCost: 1, Overhead: 1}
	cat.MustAdd("W1", schema.MustParseQuery("W1(A) :- play-in(A, M)"), stats)
	cat.MustAdd("W2", schema.MustParseQuery("W2(A) :- play-in(A, starwars)"), stats)
	q := schema.MustParseQuery("Q(A) :- play-in(A, starwars)")
	b, err := BuildBuckets(q, cat)
	if err != nil {
		t.Fatal(err)
	}
	pd := NewPlanDomain(b, cat)
	soundByName := make(map[string]bool)
	for _, p := range pd.Space.Enumerate() {
		ok, err := pd.IsSound(p)
		if err != nil {
			t.Fatal(err)
		}
		name := pd.Underlying(p.Sources()[0]).Name
		soundByName[name] = ok
		if ok {
			pq, _ := pd.PlanQuery(p)
			exp, err := Expand(pq, cat)
			if err != nil {
				t.Fatal(err)
			}
			if !containment.Contains(exp, q) {
				t.Errorf("plan %s declared sound but expansion not contained", pq)
			}
		}
	}
	if soundByName["W1"] {
		t.Error("plan over W1 should be unsound (movie constant not enforced)")
	}
	if !soundByName["W2"] {
		t.Error("plan over W2 should be sound")
	}
}

func TestExistentialVariableBlocksBucketEntry(t *testing.T) {
	// V projects away the movie, so it cannot answer a subgoal that needs
	// the movie value for the head.
	cat := lav.NewCatalog()
	stats := lav.Stats{Tuples: 10, TransmitCost: 1, Overhead: 1}
	cat.MustAdd("VA", schema.MustParseQuery("VA(A) :- play-in(A, M)"), stats)
	cat.MustAdd("VB", schema.MustParseQuery("VB(A, M) :- play-in(A, M)"), stats)
	q := schema.MustParseQuery("Q(A, M) :- play-in(A, M)")
	b, err := BuildBuckets(q, cat)
	if err != nil {
		t.Fatal(err)
	}
	if got := len(b.Entries[0]); got != 1 {
		t.Fatalf("bucket has %d entries, want only VB: %v", got, b.Entries[0])
	}
	if b.Entries[0][0].Source.Name != "VB" {
		t.Errorf("bucket entry is %s, want VB", b.Entries[0][0].Source.Name)
	}
}

func TestExpandMoviePlan(t *testing.T) {
	cat := movieCatalog(t)
	plan := schema.MustParseQuery("P(M, R) :- V1(ford, M), V4(R, M)")
	exp, err := Expand(plan, cat)
	if err != nil {
		t.Fatal(err)
	}
	// Expansion: play-in(ford,M), american(M), review-of(R,M).
	if len(exp.Body) != 3 {
		t.Fatalf("expansion has %d atoms, want 3: %s", len(exp.Body), exp)
	}
	if !containment.Contains(exp, movieQuery()) {
		t.Errorf("expansion %s not contained in query", exp)
	}
}

func TestMiniConMovieDomain(t *testing.T) {
	cat := movieCatalog(t)
	q := movieQuery()
	gb, err := BuildMCDs(q, cat)
	if err != nil {
		t.Fatal(err)
	}
	md, err := NewMiniConDomain(gb, cat)
	if err != nil {
		t.Fatal(err)
	}
	// All subgoals are independent here, so there is a single space of
	// 3x3 plans, all sound.
	if len(md.Spaces) != 1 {
		t.Fatalf("got %d spaces, want 1", len(md.Spaces))
	}
	if got := md.Spaces[0].Size(); got != 9 {
		t.Fatalf("space has %d plans, want 9", got)
	}
	for _, p := range md.Spaces[0].Enumerate() {
		pq, err := md.PlanQuery(p)
		if err != nil {
			t.Fatal(err)
		}
		sound, err := IsSound(pq, q, cat)
		if err != nil {
			t.Fatal(err)
		}
		if !sound {
			t.Errorf("minicon plan %s is unsound", pq)
		}
	}
}

func TestMiniConSpansJoinedSubgoals(t *testing.T) {
	// The existential join variable C forces both subgoals into one MCD:
	// V stores pairs (A,B) connected via an unexposed middle value.
	cat := lav.NewCatalog()
	stats := lav.Stats{Tuples: 10, TransmitCost: 1, Overhead: 1}
	cat.MustAdd("VP", schema.MustParseQuery("VP(A, B) :- edge(A, C), edge(C, B)"), stats)
	q := schema.MustParseQuery("Q(X, Y) :- edge(X, Z), edge(Z, Y)")
	gb, err := BuildMCDs(q, cat)
	if err != nil {
		t.Fatal(err)
	}
	mcds, ok := gb.ByCover["0,1"]
	if !ok || len(mcds) == 0 {
		t.Fatalf("no MCD covering both subgoals; got %v", gb.ByCover)
	}
	md, err := NewMiniConDomain(gb, cat)
	if err != nil {
		t.Fatal(err)
	}
	for _, sp := range md.Spaces {
		for _, p := range sp.Enumerate() {
			pq, err := md.PlanQuery(p)
			if err != nil {
				t.Fatal(err)
			}
			sound, err := IsSound(pq, q, cat)
			if err != nil {
				t.Fatal(err)
			}
			if !sound {
				t.Errorf("minicon plan %s is unsound", pq)
			}
		}
	}
}

func TestBuildBucketsErrorOnUncoverableSubgoal(t *testing.T) {
	cat := movieCatalog(t)
	q := schema.MustParseQuery("Q(M) :- director-of(D, M)")
	if _, err := BuildBuckets(q, cat); err == nil {
		t.Fatal("expected error for uncoverable subgoal")
	}
}
