package reformulate

import (
	"testing"

	"qporder/internal/execsim"
	"qporder/internal/schema"
)

func TestInvertCatalogMovie(t *testing.T) {
	cat := movieCatalog(t)
	rules := InvertCatalog(cat)
	// V1 has two body atoms, V2 two, V3 one, V4-V6 one each: 8 rules.
	if len(rules) != 8 {
		t.Fatalf("got %d inverse rules: %v", len(rules), rules)
	}
	byPred := map[string]int{}
	for _, r := range rules {
		byPred[r.Head.Pred]++
		if r.Body.Pred != r.Source.Name {
			t.Errorf("rule %s body predicate != source name", r)
		}
	}
	if byPred["play-in"] != 3 || byPred["review-of"] != 3 ||
		byPred["american"] != 1 || byPred["russian"] != 1 {
		t.Errorf("rule distribution: %v", byPred)
	}
}

func TestInvertSkolemizesExistentials(t *testing.T) {
	cat := movieCatalog(t)
	stats := cat.Sources()[0].Stats
	cat.MustAdd("VP", schema.MustParseQuery("VP(A) :- play-in(A, M)"), stats)
	rules := InvertCatalog(cat)
	var vp *InverseRule
	for i := range rules {
		if rules[i].Source.Name == "VP" {
			vp = &rules[i]
		}
	}
	if vp == nil {
		t.Fatal("no rule for VP")
	}
	// play-in(A, sk) :- VP(A): position 1 Skolemized.
	if len(vp.Skolems) != 1 || vp.Skolems[0] != 1 {
		t.Fatalf("skolems = %v in %s", vp.Skolems, vp)
	}
	if !IsSkolem(vp.Head.Args[1]) {
		t.Errorf("arg 1 = %v, want Skolem", vp.Head.Args[1])
	}
	if IsSkolem(vp.Head.Args[0]) {
		t.Error("arg 0 wrongly Skolem")
	}
}

// TestInverseBucketsMatchBucketAlgorithm: Section 7's observation — the
// inverse rules per subgoal form exactly the buckets the bucket algorithm
// builds (same sources, same instantiated atoms).
func TestInverseBucketsMatchBucketAlgorithm(t *testing.T) {
	cat := movieCatalog(t)
	q := movieQuery()
	ba, err := BuildBuckets(q, cat)
	if err != nil {
		t.Fatal(err)
	}
	ib, err := InverseBuckets(q, cat)
	if err != nil {
		t.Fatal(err)
	}
	if len(ba.Entries) != len(ib.Entries) {
		t.Fatalf("bucket counts differ")
	}
	for gi := range ba.Entries {
		namesA := map[string]bool{}
		for _, e := range ba.Entries[gi] {
			namesA[e.Source.Name] = true
		}
		namesB := map[string]bool{}
		for _, e := range ib.Entries[gi] {
			namesB[e.Source.Name] = true
		}
		if len(namesA) != len(namesB) {
			t.Errorf("bucket %d: %v vs %v", gi, namesA, namesB)
			continue
		}
		for n := range namesA {
			if !namesB[n] {
				t.Errorf("bucket %d: source %s missing from inverse buckets", gi, n)
			}
		}
	}
	// Plans from inverse buckets are orderable and expandable like bucket
	// ones.
	pd := NewPlanDomain(ib, cat)
	for _, p := range pd.Space.Enumerate() {
		if _, err := pd.IsSound(p); err != nil {
			t.Fatal(err)
		}
	}
}

// TestInverseBucketsPruneSkolemCollisions: a source projecting away a
// needed variable must not enter the bucket (its Skolem cannot supply the
// value).
func TestInverseBucketsPruneSkolemCollisions(t *testing.T) {
	cat := movieCatalog(t)
	stats := cat.Sources()[0].Stats
	cat.MustAdd("VP", schema.MustParseQuery("VP(A) :- play-in(A, M)"), stats)
	q := movieQuery() // needs M (head + join)
	ib, err := InverseBuckets(q, cat)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range ib.Entries[0] {
		if e.Source.Name == "VP" {
			t.Error("VP entered the play-in bucket despite Skolemized M")
		}
	}
}

// TestDatalogProgramComputesUnionOfSoundPlans: evaluating the inverse-rule
// program over complete sources yields exactly the answers recovered by
// the union of sound bucket plans (after Skolem filtering) — the
// equivalence Section 7 relies on.
func TestDatalogProgramComputesUnionOfSoundPlans(t *testing.T) {
	cat := movieCatalog(t)
	q := movieQuery()

	world := execsim.GenerateWorld(execsim.WorldConfig{
		Relations: []execsim.RelationSpec{
			{Name: "play-in", Arity: 2}, {Name: "review-of", Arity: 2},
			{Name: "american", Arity: 1}, {Name: "russian", Arity: 1},
		},
		TuplesPerRelation: 25,
		DomainSize:        7,
		Seed:              31,
	})
	world.Add("play-in", "ford", "c1")
	world.Add("review-of", "rev9", "c1")
	store := execsim.PopulateSources(cat, world, 1.0, 32)

	// Inverse-rule program over the source contents.
	prog := DatalogProgram(q, cat)
	derived, err := execsim.EvalProgram(prog, store)
	if err != nil {
		t.Fatal(err)
	}
	progAnswers := execsim.NewAnswerSet()
	progAnswers.Add(execsim.FilterAnswers(derived[q.Name], func(a schema.Atom) bool {
		for _, t := range a.Args {
			if IsSkolem(t) {
				return false
			}
		}
		return true
	}))

	// Union of sound bucket plans over the same contents.
	b, err := BuildBuckets(q, cat)
	if err != nil {
		t.Fatal(err)
	}
	pd := NewPlanDomain(b, cat)
	eng := execsim.NewEngine(cat, store)
	planAnswers := execsim.NewAnswerSet()
	for _, p := range pd.Space.Enumerate() {
		sound, err := pd.IsSound(p)
		if err != nil {
			t.Fatal(err)
		}
		if !sound {
			continue
		}
		pq, _ := pd.PlanQuery(p)
		out, err := eng.ExecutePlan(pq)
		if err != nil {
			t.Fatal(err)
		}
		planAnswers.Add(out)
	}

	if progAnswers.Len() != planAnswers.Len() {
		t.Fatalf("program answers %d, plan-union answers %d\nprog:\n%splans:\n%s",
			progAnswers.Len(), planAnswers.Len(), progAnswers, planAnswers)
	}
	for _, a := range progAnswers.Atoms() {
		if !planAnswers.Contains(schema.Atom{Pred: "P", Args: a.Args}) {
			t.Errorf("answer %v derived by program but not by plans", a)
		}
	}
}
