package reformulate

import (
	"fmt"

	"qporder/internal/core"
	"qporder/internal/lav"
	"qporder/internal/planspace"
	"qporder/internal/schema"
)

// PlanDomain bridges reformulation and plan ordering. A source can appear
// in one bucket through several unifiers, so the planspace unit is the
// bucket *entry*, not the source: PlanDomain derives an entry catalog with
// one derived source per entry, copying the underlying source's
// statistics, and exposes the plan space over entry IDs.
type PlanDomain struct {
	// Buckets is the reformulation result this domain was built from.
	Buckets *Buckets
	// Source is the original catalog (needed to expand plans).
	Source *lav.Catalog
	// Entries is the derived entry catalog the ordering algorithms see.
	Entries *lav.Catalog
	// Space is the plan space over entry IDs.
	Space *planspace.Space

	entryOf map[lav.SourceID]Entry
}

// NewPlanDomain derives the ordering-facing view of a bucket set.
func NewPlanDomain(b *Buckets, cat *lav.Catalog) *PlanDomain {
	pd := &PlanDomain{
		Buckets: b,
		Source:  cat,
		Entries: lav.NewCatalog(),
		entryOf: make(map[lav.SourceID]Entry),
	}
	buckets := make([][]lav.SourceID, len(b.Entries))
	for gi, es := range b.Entries {
		for ei, e := range es {
			name := fmt.Sprintf("%s@g%d#%d", e.Source.Name, gi, ei)
			derived := pd.Entries.MustAdd(name, nil, e.Source.Stats)
			pd.entryOf[derived.ID] = e
			buckets[gi] = append(buckets[gi], derived.ID)
		}
	}
	pd.Space = planspace.NewSpace(buckets)
	return pd
}

// Entry returns the bucket entry behind a derived entry ID.
func (pd *PlanDomain) Entry(id lav.SourceID) Entry { return pd.entryOf[id] }

// Underlying returns the original source behind a derived entry ID.
func (pd *PlanDomain) Underlying(id lav.SourceID) *lav.Source {
	return pd.entryOf[id].Source
}

// EntriesWithStats derives a parallel entry catalog whose statistics come
// from statsOf applied to each entry's underlying source; entry names and
// IDs are identical to Entries, so plans, coverage models, and caches
// keyed by entry ID remain valid. Used by adaptive re-ordering to feed
// revised statistics into a fresh utility measure.
func (pd *PlanDomain) EntriesWithStats(statsOf func(orig *lav.Source) lav.Stats) *lav.Catalog {
	out := lav.NewCatalog()
	for _, e := range pd.Entries.Sources() {
		orig := pd.entryOf[e.ID].Source
		out.MustAdd(e.Name, nil, statsOf(orig))
	}
	return out
}

// FormatPlan renders a concrete plan with the underlying source names,
// e.g. "V1 V5".
func (pd *PlanDomain) FormatPlan(p *planspace.Plan) string {
	out := ""
	for i, id := range p.Sources() {
		if i > 0 {
			out += " "
		}
		out += pd.entryOf[id].Source.Name
	}
	return out
}

// PlanQuery renders a concrete ordering plan as its conjunctive plan
// query over the sources.
func (pd *PlanDomain) PlanQuery(p *planspace.Plan) (*schema.Query, error) {
	if !p.Concrete() {
		return nil, fmt.Errorf("reformulate: PlanQuery of abstract plan %s", p.Key())
	}
	choice := make([]Entry, p.Len())
	for i, id := range p.Sources() {
		choice[i] = pd.entryOf[id]
	}
	return pd.Buckets.PlanQuery(choice)
}

// IsSound runs the soundness test on a concrete ordering plan. Unsafe
// plans (PlanQuery error) are unsound.
func (pd *PlanDomain) IsSound(p *planspace.Plan) (bool, error) {
	pq, err := pd.PlanQuery(p)
	if err != nil {
		return false, nil
	}
	return IsSound(pq, pd.Buckets.Query, pd.Source)
}

// SoundNext pulls plans from an orderer until a sound one appears,
// implementing the Section 2 strategy: order the full Cartesian product,
// test each emitted plan for soundness, discard unsound ones. It returns
// the plan, its plan query, its utility, and ok=false when the orderer is
// exhausted. The error reports expansion failures (malformed catalogs).
func (pd *PlanDomain) SoundNext(o core.Orderer) (*planspace.Plan, *schema.Query, float64, bool, error) {
	for {
		p, u, ok := o.Next()
		if !ok {
			return nil, nil, 0, false, nil
		}
		pq, err := pd.PlanQuery(p)
		if err != nil {
			continue // unsafe: cannot be sound
		}
		sound, err := IsSound(pq, pd.Buckets.Query, pd.Source)
		if err != nil {
			return nil, nil, 0, false, err
		}
		if sound {
			return p, pq, u, true, nil
		}
	}
}
