package reformulate

import (
	"fmt"
	"sort"
	"strings"

	"qporder/internal/lav"
	"qporder/internal/planspace"
	"qporder/internal/schema"
)

// MCD (MiniCon description) records that one source can cover a set of
// query subgoals together (Section 7's discussion of [19]). Unlike bucket
// entries, an MCD may span several subgoals when a shared existential
// variable forces them to be answered by the same source.
type MCD struct {
	// Source is the covering source.
	Source *lav.Source
	// Covered lists the covered subgoal indices, ascending.
	Covered []int
	// Atom is the instantiated source head to place in plans.
	Atom schema.Atom
}

// coveredKey renders the covered set as a map key, e.g. "0,2".
func coveredKey(covered []int) string {
	parts := make([]string, len(covered))
	for i, c := range covered {
		parts[i] = fmt.Sprint(c)
	}
	return strings.Join(parts, ",")
}

// GeneralizedBuckets groups MCDs by their covered subgoal set: the
// generalized buckets of Section 7. Plan spaces are the partitions of the
// query's subgoals into covered sets with non-empty buckets; every plan
// they generate is sound by construction (no post-test needed).
type GeneralizedBuckets struct {
	Query *schema.Query
	// ByCover maps coveredKey -> MCDs with that exact covered set.
	ByCover map[string][]MCD
}

// BuildMCDs forms all MCDs for the query over the catalog. The procedure
// follows MiniCon's core idea: start from a subgoal/view-atom unification
// and close over the query variables that map to existential view
// variables — every other subgoal using such a variable must be covered by
// the same source under the same mapping. Choices of covering atom are
// explored exhaustively; failed closures produce no MCD. Property C1 is
// enforced: distinguished query variables may not map to existential view
// variables.
func BuildMCDs(q *schema.Query, cat *lav.Catalog) (*GeneralizedBuckets, error) {
	if err := q.Validate(); err != nil {
		return nil, err
	}
	gb := &GeneralizedBuckets{Query: q, ByCover: make(map[string][]MCD)}
	seen := make(map[string]bool) // dedupe identical MCDs
	for _, src := range cat.Sources() {
		if src.Def == nil {
			continue
		}
		for gi := range q.Body {
			// Rename per (source, anchor subgoal) so a source covering
			// several disjoint parts of one plan contributes disjoint
			// fresh variables.
			def := src.Def.Rename(fmt.Sprintf("_m%d_%d", src.ID, gi))
			for _, atom := range def.Body {
				sub, ok := schema.UnifyAtoms(atom, q.Body[gi], schema.Subst{})
				if !ok {
					continue
				}
				closeMCD(q, src, def, map[int]bool{gi: true}, sub, func(covered []int, final schema.Subst) {
					// Minimality: keep only MCDs whose smallest covered
					// subgoal is gi, so each MCD is generated once from its
					// anchor subgoal.
					if covered[0] != gi {
						return
					}
					head := final.ApplyAtom(schema.Atom{Pred: src.Name, Args: def.Head})
					m := MCD{Source: src, Covered: covered, Atom: head}
					sig := src.Name + "/" + coveredKey(covered) + "/" + head.String()
					if seen[sig] {
						return
					}
					seen[sig] = true
					key := coveredKey(covered)
					gb.ByCover[key] = append(gb.ByCover[key], m)
				})
			}
		}
	}
	return gb, nil
}

// closeMCD enforces MiniCon's closure property on a partial MCD and emits
// every completed MCD via emit.
//
// Simplification relative to full MiniCon (documented in DESIGN.md): MCDs
// that specialize the query — binding a query variable to a constant or
// merging two query variables — are rejected rather than handled with
// MiniCon's equivalence-class machinery. This costs completeness on
// corner cases, never soundness.
func closeMCD(q *schema.Query, src *lav.Source, def *schema.Query,
	covered map[int]bool, sub schema.Subst, emit func([]int, schema.Subst)) {
	// Reject specializing mappings: every query variable must stay free.
	for _, x := range q.Vars() {
		if sub.Resolve(x) != x {
			return
		}
	}

	// Unification binds view variables to query terms, so "query variable
	// x is matched by an existential view variable" appears as y→x with y
	// existential. Collect those query variables.
	existentialImage := make(map[schema.Term]bool)
	for _, y := range def.ExistentialVars() {
		img := sub.Resolve(y)
		if img.IsVar() && img != y {
			existentialImage[img] = true
		}
	}

	// Property C1: distinguished query variables must not be matched by
	// existential view variables.
	for _, x := range q.DistinguishedVars() {
		if existentialImage[x] {
			return
		}
	}

	// Find a violated closure obligation: a covered subgoal's variable
	// matched by an existential view variable but also occurring in an
	// uncovered subgoal.
	for gi := range covered {
		var vars []schema.Term
		vars = q.Body[gi].Vars(vars)
		for _, x := range vars {
			if !existentialImage[x] {
				continue
			}
			for gj := range q.Body {
				if covered[gj] {
					continue
				}
				var ovs []schema.Term
				ovs = q.Body[gj].Vars(ovs)
				if !termIn(ovs, x) {
					continue
				}
				// Subgoal gj must join the MCD: try every atom of the view.
				for _, atom := range def.Body {
					ext, ok := schema.UnifyAtoms(atom, q.Body[gj], sub)
					if !ok {
						continue
					}
					nc := make(map[int]bool, len(covered)+1)
					for k := range covered {
						nc[k] = true
					}
					nc[gj] = true
					closeMCD(q, src, def, nc, ext, emit)
				}
				return // obligation found; only extended MCDs can be valid
			}
		}
	}

	// No obligations left: the MCD is complete.
	out := make([]int, 0, len(covered))
	for k := range covered {
		out = append(out, k)
	}
	sort.Ints(out)
	emit(out, sub)
}

// MiniConDomain is the ordering-facing view of generalized buckets: one
// derived source per MCD and one plan space per partition of the query's
// subgoals into covered sets.
type MiniConDomain struct {
	Buckets *GeneralizedBuckets
	Source  *lav.Catalog
	Entries *lav.Catalog
	Spaces  []*planspace.Space

	mcdOf map[lav.SourceID]MCD
}

// NewMiniConDomain enumerates the plan spaces. It returns an error when
// some subgoal is not covered by any MCD (the query is unanswerable).
func NewMiniConDomain(gb *GeneralizedBuckets, cat *lav.Catalog) (*MiniConDomain, error) {
	md := &MiniConDomain{
		Buckets: gb,
		Source:  cat,
		Entries: lav.NewCatalog(),
		mcdOf:   make(map[lav.SourceID]MCD),
	}
	// Derive one entry per MCD, grouped by covered set.
	idsByCover := make(map[string][]lav.SourceID)
	covers := make([]string, 0, len(gb.ByCover))
	coverSets := make(map[string][]int)
	for key, mcds := range gb.ByCover {
		covers = append(covers, key)
		coverSets[key] = mcds[0].Covered
		for i, m := range mcds {
			name := fmt.Sprintf("%s@%s#%d", m.Source.Name, key, i)
			derived := md.Entries.MustAdd(name, nil, m.Source.Stats)
			md.mcdOf[derived.ID] = m
			idsByCover[key] = append(idsByCover[key], derived.ID)
		}
	}
	sort.Strings(covers)

	// Enumerate exact covers of the subgoal set by disjoint covered sets.
	n := len(gb.Query.Body)
	var rec func(taken []bool, parts []string)
	found := false
	rec = func(taken []bool, parts []string) {
		lowest := -1
		for i, t := range taken {
			if !t {
				lowest = i
				break
			}
		}
		if lowest < 0 {
			found = true
			buckets := make([][]lav.SourceID, len(parts))
			for i, key := range parts {
				buckets[i] = idsByCover[key]
			}
			md.Spaces = append(md.Spaces, planspace.NewSpace(buckets))
			return
		}
		for _, key := range covers {
			set := coverSets[key]
			if set[0] != lowest && !intIn(set, lowest) {
				continue
			}
			ok := true
			for _, g := range set {
				if taken[g] {
					ok = false
					break
				}
			}
			if !ok {
				continue
			}
			for _, g := range set {
				taken[g] = true
			}
			rec(taken, append(parts, key))
			for _, g := range set {
				taken[g] = false
			}
		}
	}
	rec(make([]bool, n), nil)
	if !found {
		return nil, fmt.Errorf("reformulate: no MCD cover exists for query %s", gb.Query)
	}
	return md, nil
}

func intIn(xs []int, x int) bool {
	for _, v := range xs {
		if v == x {
			return true
		}
	}
	return false
}

// MCD returns the MCD behind a derived entry ID.
func (md *MiniConDomain) MCD(id lav.SourceID) MCD { return md.mcdOf[id] }

// EntriesWithStats derives a parallel entry catalog with statistics from
// statsOf applied to each MCD's underlying source (see
// PlanDomain.EntriesWithStats).
func (md *MiniConDomain) EntriesWithStats(statsOf func(orig *lav.Source) lav.Stats) *lav.Catalog {
	out := lav.NewCatalog()
	for _, e := range md.Entries.Sources() {
		orig := md.mcdOf[e.ID].Source
		out.MustAdd(e.Name, nil, statsOf(orig))
	}
	return out
}

// PlanQuery renders a concrete plan from any of the domain's spaces as a
// conjunctive query over the sources.
func (md *MiniConDomain) PlanQuery(p *planspace.Plan) (*schema.Query, error) {
	if !p.Concrete() {
		return nil, fmt.Errorf("reformulate: PlanQuery of abstract plan %s", p.Key())
	}
	q := md.Buckets.Query
	out := &schema.Query{Name: "P", Head: append([]schema.Term(nil), q.Head...)}
	for _, id := range p.Sources() {
		out.Body = append(out.Body, md.mcdOf[id].Atom.Clone())
	}
	if !out.IsSafe() {
		return nil, fmt.Errorf("reformulate: minicon plan %s is unsafe", out)
	}
	return out, nil
}
