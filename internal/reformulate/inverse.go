package reformulate

import (
	"fmt"

	"qporder/internal/lav"
	"qporder/internal/schema"
)

// Inverse rules (Duschka & Genesereth [5], discussed in Section 7).
//
// Each LAV description V(X̄) :- g1(Ȳ1), ..., gm(Ȳm) is inverted into one
// rule per body atom:
//
//	gi(Ȳi') :- V(X̄)
//
// where distinguished view variables stay and each existential view
// variable Z is replaced by a Skolem term f_V_Z(X̄) — represented here as
// a functional constant over the rule's head variables. The inverse
// rules specify, for every schema relation, all the ways to obtain its
// tuples from the sources; adding them to the query yields a datalog
// program that computes all certain answers.
//
// Section 7 observes that for conjunctive queries the inverse rules
// covering one schema relation naturally form a bucket, so the
// plan-ordering algorithms apply unchanged. InverseBuckets implements
// that construction.

// InverseRule is one inverted source description.
type InverseRule struct {
	// Head is the schema-relation atom the rule derives.
	Head schema.Atom
	// Body is the single source atom V(X̄).
	Body schema.Atom
	// Source is the inverted source.
	Source *lav.Source
	// Skolems lists the head argument positions holding Skolem terms
	// (existential view variables not exposed by the source).
	Skolems []int
}

// String renders "play-in(A, M) :- V1(A, M)".
func (r InverseRule) String() string {
	return r.Head.String() + " :- " + r.Body.String()
}

// rename returns a copy of the rule with every variable suffixed.
func (r InverseRule) rename(suffix string) InverseRule {
	sub := make(schema.Subst)
	var vars []schema.Term
	vars = r.Head.Vars(vars)
	vars = r.Body.Vars(vars)
	for _, v := range vars {
		sub[v] = schema.Var(v.Name + suffix)
	}
	out := r
	out.Head = sub.ApplyAtom(r.Head)
	out.Body = sub.ApplyAtom(r.Body)
	out.Skolems = append([]int(nil), r.Skolems...)
	return out
}

// InvertCatalog computes the inverse rules of every described source.
func InvertCatalog(cat *lav.Catalog) []InverseRule {
	var out []InverseRule
	for _, src := range cat.Sources() {
		if src.Def == nil {
			continue
		}
		def := src.Def.Rename(fmt.Sprintf("_i%d", src.ID))
		distinguished := def.DistinguishedVars()
		headAtom := schema.Atom{Pred: src.Name, Args: def.Head}
		for _, body := range def.Body {
			rule := InverseRule{
				Head:   body.Clone(),
				Body:   headAtom.Clone(),
				Source: src,
			}
			for i, t := range rule.Head.Args {
				if t.IsVar() && !termIn(distinguished, t) {
					// Existential variable: Skolemize. The functional term
					// is encoded as a reserved constant name; the datalog
					// engine treats distinct Skolem constants as distinct
					// unknown values, which is exactly the certain-answer
					// semantics needed (Skolem-containing answers are
					// filtered from query output).
					rule.Head.Args[i] = schema.Const(skolemName(src.Name, t.Name))
					rule.Skolems = append(rule.Skolems, i)
				}
			}
			out = append(out, rule)
		}
	}
	return out
}

// skolemPrefix marks Skolem constants produced by InvertCatalog.
const skolemPrefix = "_sk_"

func skolemName(source, varName string) string {
	return skolemPrefix + source + "_" + varName
}

// IsSkolem reports whether a term is a Skolem constant introduced by
// inversion.
func IsSkolem(t schema.Term) bool {
	return t.Const && len(t.Name) >= len(skolemPrefix) && t.Name[:len(skolemPrefix)] == skolemPrefix
}

// InverseBuckets groups the inverse rules by the query's subgoals,
// realizing Section 7's observation: the rules whose head predicate
// matches subgoal i form bucket i. Rules whose Skolemized positions
// collide with variables the query needs are pruned exactly like the
// bucket algorithm prunes existential mismatches. The result is a
// *Buckets value usable with NewPlanDomain, identical in spirit to
// BuildBuckets' output.
func InverseBuckets(q *schema.Query, cat *lav.Catalog) (*Buckets, error) {
	if err := q.Validate(); err != nil {
		return nil, err
	}
	rules := InvertCatalog(cat)
	b := &Buckets{Query: q, Entries: make([][]Entry, len(q.Body))}
	for gi, goal := range q.Body {
		for _, rule := range rules {
			if rule.Head.Pred != goal.Pred || len(rule.Head.Args) != len(goal.Args) {
				continue
			}
			// Rename the rule per subgoal so a source used at several
			// subgoals contributes disjoint fresh variables (otherwise the
			// plan would accidentally join the occurrences).
			r := rule.rename(fmt.Sprintf("_g%d", gi))
			// A Skolem in the rule head can only match a query variable the
			// query does not need elsewhere; needed variables and constants
			// must come from real (distinguished) positions.
			ok := true
			needed := neededVars(q, goal)
			for _, pos := range r.Skolems {
				gt := goal.Args[pos]
				if gt.Const || termIn(needed, gt) {
					ok = false
					break
				}
			}
			if !ok {
				continue
			}
			// Unify the non-Skolem positions to instantiate the source atom.
			sub := schema.Subst{}
			for i := range goal.Args {
				if intIn(r.Skolems, i) {
					continue
				}
				var okU bool
				sub, okU = schema.UnifyTerms(r.Head.Args[i], goal.Args[i], sub)
				if !okU {
					ok = false
					break
				}
			}
			if !ok {
				continue
			}
			b.Entries[gi] = append(b.Entries[gi], Entry{
				Source:  r.Source,
				Subgoal: gi,
				Atom:    sub.ApplyAtom(r.Body),
			})
		}
	}
	for gi := range b.Entries {
		if len(b.Entries[gi]) == 0 {
			return nil, fmt.Errorf("reformulate: no inverse rule covers subgoal %d (%s)",
				gi, q.Body[gi])
		}
	}
	return b, nil
}

// DatalogProgram assembles the full inverse-rule datalog program for a
// query: the query rule itself plus one rule per inverse rule. Evaluating
// the program (internal/datalog) over the source contents computes all
// certain answers; answers containing Skolem constants must be filtered
// by the caller (datalog.FilterSkolems).
func DatalogProgram(q *schema.Query, cat *lav.Catalog) []*schema.Query {
	rules := InvertCatalog(cat)
	out := []*schema.Query{q.Clone()}
	for _, r := range rules {
		out = append(out, &schema.Query{
			Name: r.Head.Pred,
			Head: r.Head.Args,
			Body: []schema.Atom{r.Body},
		})
	}
	return out
}
