package reformulate

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"

	"qporder/internal/containment"
	"qporder/internal/lav"
	"qporder/internal/schema"
)

// randomLAVCatalog builds a catalog of random view definitions over
// binary relations r0..r2, with random projections (which create
// existential variables).
func randomLAVCatalog(rng *rand.Rand) *lav.Catalog {
	cat := lav.NewCatalog()
	stats := lav.Stats{Tuples: 10, TransmitCost: 1, Overhead: 1}
	nSources := 3 + rng.Intn(5)
	for s := 0; s < nSources; s++ {
		nAtoms := 1 + rng.Intn(2)
		var body []schema.Atom
		var vars []schema.Term
		for a := 0; a < nAtoms; a++ {
			v1 := schema.Var(fmt.Sprintf("Y%d", rng.Intn(3)))
			v2 := schema.Var(fmt.Sprintf("Y%d", rng.Intn(3)))
			body = append(body, schema.NewAtom(fmt.Sprintf("r%d", rng.Intn(3)), v1, v2))
			vars = append(vars, v1, v2)
		}
		// Random projection: keep a non-empty subset of the variables.
		seen := map[schema.Term]bool{}
		var distinct []schema.Term
		for _, v := range vars {
			if !seen[v] {
				seen[v] = true
				distinct = append(distinct, v)
			}
		}
		var head []schema.Term
		for _, v := range distinct {
			if rng.Intn(3) > 0 {
				head = append(head, v)
			}
		}
		if len(head) == 0 {
			head = distinct[:1]
		}
		def := &schema.Query{Name: fmt.Sprintf("W%d", s), Head: head, Body: body}
		cat.MustAdd(def.Name, def, stats)
	}
	return cat
}

// randomQuery builds a random conjunctive query over r0..r2.
func randomQuery(rng *rand.Rand) *schema.Query {
	n := 1 + rng.Intn(2)
	var body []schema.Atom
	for i := 0; i < n; i++ {
		v1 := schema.Var(fmt.Sprintf("Q%d", rng.Intn(3)))
		v2 := schema.Var(fmt.Sprintf("Q%d", rng.Intn(3)))
		body = append(body, schema.NewAtom(fmt.Sprintf("r%d", rng.Intn(3)), v1, v2))
	}
	var vars []schema.Term
	for _, a := range body {
		vars = a.Vars(vars)
	}
	head := vars[:1+rng.Intn(len(vars))]
	return &schema.Query{Name: "Q", Head: head, Body: body}
}

// normalizeQuery renders a query with variables canonically renamed in
// order of first occurrence (head first, then body in order).
func normalizeQuery(q *schema.Query) string {
	names := map[schema.Term]string{}
	canon := func(t schema.Term) schema.Term {
		if !t.IsVar() {
			return t
		}
		n, ok := names[t]
		if !ok {
			n = fmt.Sprintf("X%d", len(names))
			names[t] = n
		}
		return schema.Var(n)
	}
	out := q.Clone()
	for i, t := range out.Head {
		out.Head[i] = canon(t)
	}
	for i := range out.Body {
		for j, t := range out.Body[i].Args {
			out.Body[i].Args[j] = canon(t)
		}
	}
	return out.String()
}

// soundExpansions enumerates the domain's plans, filters by soundness,
// and returns each sound plan's expansion (over schema relations).
func soundExpansions(t *testing.T, pd *PlanDomain) []*schema.Query {
	t.Helper()
	var out []*schema.Query
	for _, p := range pd.Space.Enumerate() {
		sound, err := pd.IsSound(p)
		if err != nil {
			t.Fatal(err)
		}
		if !sound {
			continue
		}
		pq, err := pd.PlanQuery(p)
		if err != nil {
			t.Fatal(err)
		}
		exp, err := Expand(pq, pd.Source)
		if err != nil {
			t.Fatal(err)
		}
		out = append(out, exp)
	}
	return out
}

// coveredBy reports whether every plan expansion in as is contained in
// some plan expansion of bs (by Sagiv–Yannakakis, a CQ is contained in a
// union of CQs iff it is contained in one disjunct, so this is exactly
// "union(as) ⊆ union(bs)").
func coveredBy(as, bs []*schema.Query) (bool, *schema.Query) {
	for _, a := range as {
		ok := false
		for _, b := range bs {
			if containment.Contains(a, b) {
				ok = true
				break
			}
		}
		if !ok {
			return false, a
		}
	}
	return true, nil
}

// TestInverseBucketsEquivalentToBucketAlgorithm: Section 7's claim, as an
// executable property — for random LAV catalogs and conjunctive queries,
// the inverse-rule construction and the bucket algorithm produce the same
// certain answers: the unions of their sound plans' expansions are
// equivalent. (The raw plan sets may differ: the classic bucket algorithm
// admits entries whose unifier merges query variables, yielding redundant
// sound plans subsumed by other plans; the inverse-rule construction
// prunes the corresponding Skolem collisions up front.)
func TestInverseBucketsEquivalentToBucketAlgorithm(t *testing.T) {
	cfg := &quick.Config{MaxCount: 200}
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		cat := randomLAVCatalog(rng)
		q := randomQuery(rng)
		ba, errA := BuildBuckets(q, cat)
		ib, errB := InverseBuckets(q, cat)
		if errA != nil && errB == nil {
			t.Logf("seed %d: bucket algorithm failed (%v) but inverse rules succeeded", seed, errA)
			return false // inverse entries are a subset of bucket entries
		}
		if errA != nil {
			return true // neither covers the query
		}
		expA := soundExpansions(t, NewPlanDomain(ba, cat))
		var expB []*schema.Query
		if errB == nil {
			expB = soundExpansions(t, NewPlanDomain(ib, cat))
		}
		if ok, witness := coveredBy(expA, expB); !ok {
			t.Logf("seed %d: bucket plan %s not covered by inverse plans (q=%s)", seed, witness, q)
			return false
		}
		if ok, witness := coveredBy(expB, expA); !ok {
			t.Logf("seed %d: inverse plan %s not covered by bucket plans (q=%s)", seed, witness, q)
			return false
		}
		return true
	}
	if err := quick.Check(prop, cfg); err != nil {
		t.Error(err)
	}
}
