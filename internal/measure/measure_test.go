package measure

import (
	"testing"

	"qporder/internal/abstraction"
	"qporder/internal/lav"
	"qporder/internal/obs"
	"qporder/internal/planspace"
)

func leafPlan(srcs ...lav.SourceID) *planspace.Plan {
	nodes := make([]*abstraction.Node, len(srcs))
	for i, s := range srcs {
		nodes[i] = &abstraction.Node{Bucket: i, Sources: []lav.SourceID{s}}
	}
	return planspace.New(nodes...)
}

func groupPlan(groups ...[]lav.SourceID) *planspace.Plan {
	nodes := make([]*abstraction.Node, len(groups))
	for i, g := range groups {
		nodes[i] = &abstraction.Node{Bucket: i, Sources: g}
		if len(g) > 1 {
			// children are unused by the witness machinery
			nodes[i].Children = []*abstraction.Node{
				{Bucket: i, Sources: g[:1]},
				{Bucket: i, Sources: g[1:]},
			}
		}
	}
	return planspace.New(nodes...)
}

func TestBaseBookkeeping(t *testing.T) {
	var b Base
	if b.Evals() != 0 || len(b.Executed()) != 0 {
		t.Fatal("zero Base not empty")
	}
	b.CountEval()
	b.CountEval()
	if b.Evals() != 2 {
		t.Errorf("Evals = %d", b.Evals())
	}
	p := leafPlan(1, 2)
	b.Record(p)
	if len(b.Executed()) != 1 || b.Executed()[0] != p {
		t.Error("Record did not append")
	}
}

func TestRecordAbstractPanics(t *testing.T) {
	var b Base
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	b.Record(groupPlan([]lav.SourceID{1, 2}))
}

func TestEnumerateWitnessFindsWitness(t *testing.T) {
	p := groupPlan([]lav.SourceID{1, 2}, []lav.SourceID{3, 4})
	d := leafPlan(1, 3)
	// Independence oracle: plans independent iff they share no source.
	indep := func(a, b *planspace.Plan) bool {
		for i := range a.Nodes {
			if a.Nodes[i].Source() == b.Nodes[i].Source() {
				return false
			}
		}
		return true
	}
	if !EnumerateWitness(p, []*planspace.Plan{d}, indep) {
		t.Error("witness (2,4) exists but was not found")
	}
	// Now every member shares a source with some executed plan.
	ds := []*planspace.Plan{leafPlan(1, 3), leafPlan(1, 4), leafPlan(2, 3), leafPlan(2, 4)}
	if EnumerateWitness(p, ds, indep) {
		t.Error("witness claimed though none exists")
	}
}

func TestEnumerateWitnessEmptySet(t *testing.T) {
	p := groupPlan([]lav.SourceID{1, 2})
	if !EnumerateWitness(p, nil, func(a, b *planspace.Plan) bool { return false }) {
		t.Error("empty executed set must be independent")
	}
}

func TestEnumerateWitnessRespectsCap(t *testing.T) {
	// A group large enough to exceed the cap with no witness: the search
	// must terminate (and soundly answer false).
	big := make([]lav.SourceID, 40)
	for i := range big {
		big[i] = lav.SourceID(i)
	}
	p := groupPlan(big, big, big) // 64000 members > WitnessCap
	calls := 0
	got := EnumerateWitness(p, []*planspace.Plan{leafPlan(0, 0, 0)},
		func(a, b *planspace.Plan) bool {
			calls++
			return false
		})
	if got {
		t.Error("claimed witness with always-false oracle")
	}
	if calls > WitnessCap {
		t.Errorf("oracle called %d times, cap is %d", calls, WitnessCap)
	}
}

// TestBaseInstrumentation covers the counting surface shared by every
// measure context: CountEval/CountIndep bookkeeping, the registry
// mirroring set up by Bind, and rebinding to nil.
func TestBaseInstrumentation(t *testing.T) {
	var b Base
	reg := obs.NewRegistry()
	b.Bind(reg, "measure.test")

	b.CountEval()
	b.CountEval()
	if got := b.CountIndep(true); !got {
		t.Error("CountIndep(true) = false")
	}
	if got := b.CountIndep(false); got {
		t.Error("CountIndep(false) = true")
	}
	b.CountIndep(true)

	if b.Evals() != 2 {
		t.Errorf("Evals = %d, want 2", b.Evals())
	}
	checks, hits := b.IndepStats()
	if checks != 3 || hits != 2 {
		t.Errorf("IndepStats = (%d, %d), want (3, 2)", checks, hits)
	}
	for name, want := range map[string]int64{
		"measure.test.evals":        2,
		"measure.test.indep_checks": 3,
		"measure.test.indep_hits":   2,
	} {
		if got := reg.Counter(name).Value(); got != want {
			t.Errorf("%s = %d, want %d", name, got, want)
		}
	}

	// Rebinding to nil stops the mirroring but keeps local counts.
	b.Bind(nil, "")
	b.CountEval()
	b.CountIndep(true)
	if got := reg.Counter("measure.test.evals").Value(); got != 2 {
		t.Errorf("after nil Bind, registry evals = %d, want 2", got)
	}
	if b.Evals() != 3 {
		t.Errorf("after nil Bind, Evals = %d, want 3", b.Evals())
	}
}
