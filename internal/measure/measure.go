// Package measure defines the utility-measure abstraction of Section 2:
// the utility of a plan p is a number u(p | p1..pl, Q) that may depend on
// the plans already executed. Measures evaluate both concrete plans
// (point utilities) and abstract plans (sound utility intervals), expose
// the structural properties the ordering algorithms exploit (full
// monotonicity, plan independence, diminishing returns), and provide the
// sound-but-possibly-incomplete independence oracles of Section 3.
package measure

import (
	"qporder/internal/abstraction"
	"qporder/internal/interval"
	"qporder/internal/lav"
	"qporder/internal/obs"
	"qporder/internal/planspace"
)

// Measure describes a utility measure. Higher utility is better; cost
// measures are negated internally.
type Measure interface {
	// Name identifies the measure in experiment output.
	Name() string

	// FullyMonotonic reports whether the measure is fully monotonic wrt
	// every query subgoal (Section 3), enabling the Greedy algorithm. All
	// fully monotonic measures in this package are also fully
	// plan-independent, so per-bucket orders are unconditional.
	FullyMonotonic() bool

	// DiminishingReturns reports whether a plan's utility can never
	// increase as more plans are executed, enabling Streamer.
	DiminishingReturns() bool

	// BucketOrder returns the given sources sorted best-first for the given
	// subgoal, and ok=true, when the measure is monotonic wrt that subgoal.
	BucketOrder(bucket int, sources []lav.SourceID) (ordered []lav.SourceID, ok bool)

	// NewContext returns a fresh evaluation context with an empty executed
	// prefix.
	NewContext() Context
}

// Context carries the executed-plan prefix and per-run caches. A Context
// belongs to one ordering run and is not safe for concurrent use.
type Context interface {
	// Evaluate returns a utility interval that contains the utility of
	// every concrete plan represented by p, conditioned on the executed
	// prefix. For concrete plans the interval is a point.
	Evaluate(p *planspace.Plan) interval.Interval

	// Observe records that concrete plan d has been executed (appended to
	// the prefix). It panics if d is abstract.
	Observe(d *planspace.Plan)

	// Independent reports, soundly, that executing concrete plan d cannot
	// change the utility of any concrete plan represented by p. A false
	// result carries no information (the oracle may be incomplete).
	Independent(p, d *planspace.Plan) bool

	// IndependentWitness reports, soundly, that some concrete plan
	// represented by p is independent of every concrete plan in ds
	// (Streamer's CheckValidity test). ds must be concrete.
	IndependentWitness(p *planspace.Plan, ds []*planspace.Plan) bool

	// Evals returns the number of Evaluate calls performed so far — the
	// machine-neutral work metric used throughout the paper's Section 6.
	Evals() int

	// IndepStats returns how many independence-oracle queries (Independent
	// calls, including those issued by witness enumeration) were made and
	// how many reported independence.
	IndepStats() (checks, hits int)

	// Bind attaches observability counters under the given name prefix:
	// "<prefix>.evals", "<prefix>.indep_checks", "<prefix>.indep_hits".
	// A nil registry disables the counters (the default state).
	Bind(reg *obs.Registry, prefix string)

	// Executed returns the executed prefix in order. Callers must not
	// mutate the returned slice.
	Executed() []*planspace.Plan

	// Measure returns the measure this context evaluates.
	Measure() Measure
}

// Base provides the bookkeeping shared by all contexts: the executed
// prefix, the evaluation counter, and the independence-oracle counters.
// Embed it and call CountEval from Evaluate, CountIndep from Independent,
// and Record from Observe.
type Base struct {
	executed []*planspace.Plan
	evals    int
	checks   int
	hits     int

	// Optional observability mirrors; nil (no-op) until Bind.
	cEvals  *obs.Counter
	cChecks *obs.Counter
	cHits   *obs.Counter
}

// CountEval increments the evaluation counter.
func (b *Base) CountEval() {
	b.evals++
	b.cEvals.Inc()
}

// CountEvals bulk-increments the evaluation counter: batched evaluation
// records one Evaluate per frontier plan in a single call, keeping
// Evals() — and the bound obs counter — exactly what a scalar loop
// would have recorded.
func (b *Base) CountEvals(n int) {
	b.evals += n
	b.cEvals.Add(int64(n))
}

// Evals returns the evaluation count.
func (b *Base) Evals() int { return b.evals }

// CountIndep records one independence-oracle query and its verdict, and
// returns the verdict so implementations can count in the return path:
//
//	func (c *ctx) Independent(p, d *planspace.Plan) bool {
//	    return c.CountIndep(<oracle>)
//	}
func (b *Base) CountIndep(independent bool) bool {
	b.checks++
	b.cChecks.Inc()
	if independent {
		b.hits++
		b.cHits.Inc()
	}
	return independent
}

// CountIndeps bulk-records independence-oracle queries: a sweep
// answering one query per examined plan records them in a single call,
// keeping IndepStats() — and the bound obs counters — exactly what a
// scalar Independent loop would have recorded.
func (b *Base) CountIndeps(checks, hits int) {
	b.checks += checks
	b.hits += hits
	b.cChecks.Add(int64(checks))
	b.cHits.Add(int64(hits))
}

// IndepStats returns the independence-oracle query and hit counts.
func (b *Base) IndepStats() (checks, hits int) { return b.checks, b.hits }

// AddCounts merges work counts harvested from forked contexts (see Fork)
// back into this context, keeping Evals/IndepStats — and the bound obs
// counters — identical to what a sequential run would have recorded.
func (b *Base) AddCounts(evals, checks, hits int) {
	b.evals += evals
	b.checks += checks
	b.hits += hits
	b.cEvals.Add(int64(evals))
	b.cChecks.Add(int64(checks))
	b.cHits.Add(int64(hits))
}

// PrefixIndependent is the optional marker interface for measures whose
// plan utilities never depend on the executed prefix: Evaluate(p) returns
// the same interval no matter which plans have been Observed. Such
// measures admit cross-process scatter-gather ordering — disjoint slices
// of the plan space can be ordered on independent contexts (even in
// different processes) and merged by (utility, key) into exactly the
// sequence a single context would have produced. Cost measures without
// caching satisfy it; coverage-family measures (whose utilities shrink as
// answers accumulate) do not.
type PrefixIndependent interface {
	// PrefixIndependent reports whether utilities are invariant under
	// Observe for this measure configuration.
	PrefixIndependent() bool
}

// IsPrefixIndependent reports whether m declares prefix-independent
// utilities. Measures that do not implement the marker are conservatively
// treated as prefix-dependent.
func IsPrefixIndependent(m Measure) bool {
	pi, ok := m.(PrefixIndependent)
	return ok && pi.PrefixIndependent()
}

// CountAdder is the optional interface consumed by the parallel
// evaluation layer: contexts embedding Base get it for free. Contexts
// without it still evaluate correctly in parallel, but their work
// counters only reflect calls made on the main context.
type CountAdder interface {
	AddCounts(evals, checks, hits int)
}

// BatchEvaluator is the optional frontier-evaluation interface: a
// context that can score a whole refinement frontier in one pass (tiled
// kernels, shared intersection prefixes, arena-backed scratch)
// implements it. EvaluateBatch must fill out[i] with exactly what
// Evaluate(plans[i]) would return against the same executed prefix, for
// every i, and advance the work counters identically (one evaluation
// per plan) — the batched and scalar paths are interchangeable bit for
// bit, which is what lets EvaluateAll pick freely between them.
type BatchEvaluator interface {
	// EvaluateBatch scores plans[i] into out[i]; len(out) >= len(plans).
	EvaluateBatch(plans []*planspace.Plan, out []interval.Interval)
}

// EvaluateAll scores plans[i] into out[i] for every i, through the
// context's batched path when it implements BatchEvaluator and a scalar
// Evaluate loop otherwise. Results, counters, and determinism are
// identical either way.
func EvaluateAll(ctx Context, plans []*planspace.Plan, out []interval.Interval) {
	if len(plans) == 0 {
		return
	}
	if be, ok := ctx.(BatchEvaluator); ok {
		be.EvaluateBatch(plans, out[:len(plans)])
		return
	}
	for i, p := range plans {
		out[i] = ctx.Evaluate(p)
	}
}

// BulkIndependent is the optional sweep-independence interface: a
// context that can answer "which of these plans may depend on d"
// faster than one Independent call per plan implements it (e.g. by
// memoizing per-position overlap rows for the fixed d). The verdicts
// and the IndepStats deltas must be exactly what the scalar loop in
// IndependentAll would have produced: one counted query per examined
// plan, one hit per independent verdict.
type BulkIndependent interface {
	// IndependentSweep sets indep[i] = Independent(plans[i], d) for
	// every i with alive[i] (alive == nil means every i); other slots
	// are left untouched.
	IndependentSweep(plans []*planspace.Plan, d *planspace.Plan, alive, indep []bool)
}

// IndependentAll fills indep[i] = ctx.Independent(plans[i], d) for
// every i with alive[i] (alive == nil selects all), through the
// context's bulk path when it implements BulkIndependent and a scalar
// loop otherwise. Verdicts and counters are identical either way.
func IndependentAll(ctx Context, plans []*planspace.Plan, d *planspace.Plan, alive, indep []bool) {
	if bi, ok := ctx.(BulkIndependent); ok {
		bi.IndependentSweep(plans, d, alive, indep)
		return
	}
	for i, p := range plans {
		if alive == nil || alive[i] {
			indep[i] = ctx.Independent(p, d)
		}
	}
}

// ScratchResetter is the optional hook for contexts that own reusable
// scratch memory (a per-request arena): run owners call it when a
// session finishes so a parked context does not pin its high-water
// scratch between requests. It must not affect evaluation results.
type ScratchResetter interface {
	ResetScratch()
}

// Forker is the optional fast-fork interface. A context that can
// duplicate its observed state directly (e.g. by cloning a covered
// bitset) implements it to skip the Observe replay in Fork, dropping
// fork cost from O(answer-set work per executed plan) to O(state copy).
// ForkContext must return a context that behaves exactly like a replayed
// fork: same Executed() prefix, same Evaluate/Independent results, work
// counters starting at zero.
type Forker interface {
	ForkContext() Context
}

// Fork returns an independent context over the same measure with the
// same executed prefix, suitable for use from another goroutine. The
// fork shares the measure's immutable inputs (catalog, coverage model)
// but none of the per-context mutable state, so Evaluate/Independent/
// IndependentWitness on the fork return exactly what the original would:
// those results are pure functions of (measure, executed prefix, plan).
// The fork's work counters start at zero; harvest them with Catchup's
// accounting or merge manually via CountAdder.
//
// Contexts implementing Forker fork by direct state copy; everything
// else forks by replaying Observe over the executed prefix.
func Fork(ctx Context) Context {
	if f, ok := ctx.(Forker); ok {
		return f.ForkContext()
	}
	f := ctx.Measure().NewContext()
	for _, d := range ctx.Executed() {
		f.Observe(d)
	}
	return f
}

// Catchup replays onto fork the suffix of main's executed prefix that
// fork has not yet observed, returning the new synced length. have is
// the number of executed plans fork has already observed.
func Catchup(fork, main Context, have int) int {
	exec := main.Executed()
	for _, d := range exec[have:] {
		fork.Observe(d)
	}
	return len(exec)
}

// Bind attaches observability counters; a nil registry yields nil (no-op)
// counters, keeping the disabled path allocation-free.
func (b *Base) Bind(reg *obs.Registry, prefix string) {
	if reg == nil {
		b.cEvals, b.cChecks, b.cHits = nil, nil, nil
		return
	}
	b.cEvals = reg.Counter(prefix + ".evals")
	b.cChecks = reg.Counter(prefix + ".indep_checks")
	b.cHits = reg.Counter(prefix + ".indep_hits")
}

// SeedExecuted initializes the executed prefix from an existing one,
// copying the slice so the seeded context and its source never alias.
// It is intended for Forker implementations; the work counters are left
// untouched (zero for a fresh Base).
func (b *Base) SeedExecuted(executed []*planspace.Plan) {
	b.executed = append([]*planspace.Plan(nil), executed...)
}

// Record appends d to the executed prefix, panicking on abstract plans.
func (b *Base) Record(d *planspace.Plan) {
	if !d.Concrete() {
		panic("measure: Observe of abstract plan " + d.Key())
	}
	b.executed = append(b.executed, d)
}

// Executed returns the executed prefix.
func (b *Base) Executed() []*planspace.Plan { return b.executed }

// WitnessCap bounds the generic concrete-witness enumeration below.
const WitnessCap = 512

// EnumerateWitness is a generic, sound IndependentWitness fallback: it
// enumerates up to WitnessCap concrete plans represented by p and tests
// each against every plan in ds using indep (a concrete-concrete
// independence oracle). It returns false when the cap is exceeded without
// finding a witness, which is sound.
func EnumerateWitness(p *planspace.Plan, ds []*planspace.Plan,
	indep func(a, b *planspace.Plan) bool) bool {
	if len(ds) == 0 {
		return true
	}
	tried := 0

	// Depth-first enumeration of member combinations via a mixed-radix
	// counter over node members.
	nodes := p.Nodes
	choice := make([]int, len(nodes))
	for {
		if tried >= WitnessCap {
			return false
		}
		tried++
		cand := planAt(p, choice)
		ok := true
		for _, d := range ds {
			if !indep(cand, d) {
				ok = false
				break
			}
		}
		if ok {
			return true
		}
		// advance mixed-radix counter
		i := len(choice) - 1
		for i >= 0 {
			choice[i]++
			if choice[i] < nodes[i].Size() {
				break
			}
			choice[i] = 0
			i--
		}
		if i < 0 {
			return false
		}
	}
}

// planAt materializes the concrete plan selecting member choice[i] of each
// node of p. Fresh leaf nodes are fine here: witness candidates are tested
// for independence, never evaluated, so node-identity caches are unused.
func planAt(p *planspace.Plan, choice []int) *planspace.Plan {
	nodes := make([]*abstraction.Node, len(p.Nodes))
	for i, n := range p.Nodes {
		if n.IsLeaf() {
			nodes[i] = n
			continue
		}
		nodes[i] = &abstraction.Node{Bucket: n.Bucket, Sources: []lav.SourceID{n.Sources[choice[i]]}}
	}
	return planspace.New(nodes...)
}
