package coverage

import (
	"qporder/internal/bitset"
	"qporder/internal/interval"
	"qporder/internal/measure"
	"qporder/internal/planspace"
)

// This file is the batched evaluation path: EvaluateBatch scores an
// entire refinement frontier in one pass through the tiled bitset
// kernels, with all transient state (operand lists, trimmed bounds,
// count vectors, the masked prefix tile) bump-allocated from the
// context's arena. After slab warm-up a frontier evaluation performs
// zero heap allocations; the scalar Evaluate loop remains the
// differential oracle and the fallback for uncached contexts.

// EvaluateBatch implements measure.BatchEvaluator. out[i] receives
// exactly what Evaluate(plans[i]) returns — the same integer
// cardinalities divided by the same universe — and the Evals counter
// advances by len(plans), so batched and scalar runs are
// byte-identical in both output and utility-level telemetry. (Snapshot
// hit counts may legitimately drop below the scalar path's: a sibling
// run resolves its shared prefix nodes once per run instead of once
// per plan. Misses — actual kernel computations admitted to the
// snapshot — are identical.) Uncached contexts (and measures with
// batching toggled off) take the scalar loop.
func (c *context) EvaluateBatch(plans []*planspace.Plan, out []interval.Interval) {
	n := len(plans)
	if n == 0 {
		return
	}
	if c.snap == nil || !c.ms.batch {
		for i, p := range plans {
			out[i] = c.Evaluate(p)
		}
		return
	}
	c.CountEvals(n)
	a := c.arena
	a.Reset()
	lo := a.Int32s(n)
	c.batchCounts(plans, nil, false, lo)
	// Abstract plans need the second (union) pass for their upper bound;
	// it runs dense over just the abstract selection.
	nAbs := 0
	for _, p := range plans {
		if !p.Concrete() {
			nAbs++
		}
	}
	if nAbs == 0 {
		u := float64(c.model.universe)
		for i := range plans {
			out[i] = interval.Point(float64(lo[i]) / u)
		}
		c.countBatch(n)
		return
	}
	abs := a.Int32s(nAbs)
	k := 0
	for i, p := range plans {
		if !p.Concrete() {
			abs[k] = int32(i)
			k++
		}
	}
	hi := a.Int32s(nAbs)
	c.batchCounts(plans, abs, true, hi)
	u := float64(c.model.universe)
	k = 0
	for i, p := range plans {
		if p.Concrete() {
			out[i] = interval.Point(float64(lo[i]) / u)
		} else {
			out[i] = interval.New(float64(lo[i])/u, float64(hi[k])/u)
			k++
		}
	}
	c.countBatch(n)
}

// batchAt resolves the k-th selected plan: sel == nil selects all plans
// in order; otherwise plan k is plans[sel[k]].
func batchAt(plans []*planspace.Plan, sel []int32, k int) *planspace.Plan {
	if sel == nil {
		return plans[k]
	}
	return plans[sel[k]]
}

// batchCounts fills counts[k] = |(∩ sets of plan) \ covered| for each
// selected plan, using the node sets' intersections (union=false) or
// unions (union=true).
//
// The planner factors maximal sibling runs — consecutive plans whose
// node lists equal the leader's except at one shared position, the
// shape Refine children and consecutive Cartesian-enumeration plans
// take — and routes them through the prefix-sharing refine kernel,
// resolving the shared prefix nodes once per run and only the varying
// node per plan. Everything else spills to the CSR kernel (or the
// scalar fused kernel for singletons). Run detection is by node
// pointer identity, which Enumerate and Refine guarantee for shared
// positions; a missed identification only costs sharing, never
// correctness.
func (c *context) batchCounts(plans []*planspace.Plan, sel []int32, union bool, counts []int32) {
	a := c.arena
	m := len(counts)
	w := (c.model.universe + 63) / 64
	if w > bitset.TileWords {
		w = bitset.TileWords
	}
	scratch := a.Words(w)
	bounds := a.Int32s(m)
	spill := -1
	i := 0
	for i < m {
		j, varyPos := batchRun(plans, sel, i, m)
		if j-i < 2 {
			if spill < 0 {
				spill = i
			}
			i = j
			continue
		}
		if spill >= 0 {
			c.flushSpill(plans, sel, union, spill, i, bounds, counts)
			spill = -1
		}
		lead := batchAt(plans, sel, i)
		c.bprefix = c.bprefix[:0]
		for pos, nd := range lead.Nodes {
			if pos != varyPos {
				c.bprefix = append(c.bprefix, c.nodeSetShared(nd, union))
			}
		}
		c.bvars = c.bvars[:0]
		for g := i; g < j; g++ {
			c.bvars = append(c.bvars, c.nodeSetShared(batchAt(plans, sel, g).Nodes[varyPos], union))
		}
		bitset.BatchRefineCountAndNot(c.bprefix, c.bvars, c.covered, scratch, bounds[i:j], counts[i:j])
		c.countKernel()
		i = j
	}
	if spill >= 0 {
		c.flushSpill(plans, sel, union, spill, m, bounds, counts)
	}
}

// batchRun returns the end of the maximal run of plans starting at
// start whose node lists equal the leader's except at one shared
// position, plus that position. Duplicate plans (no differing
// position) extend any run.
func batchRun(plans []*planspace.Plan, sel []int32, start, m int) (end, varyPos int) {
	lead := batchAt(plans, sel, start).Nodes
	arity := len(lead)
	varyPos = -1
	j := start + 1
	for j < m {
		nds := batchAt(plans, sel, j).Nodes
		if len(nds) != arity {
			break
		}
		diff, ok := -1, true
		for p := range nds {
			if nds[p] != lead[p] {
				if diff >= 0 {
					ok = false
					break
				}
				diff = p
			}
		}
		if !ok {
			break
		}
		if diff >= 0 {
			if varyPos >= 0 && diff != varyPos {
				break
			}
			varyPos = diff
		}
		j++
	}
	if varyPos < 0 {
		varyPos = 0
	}
	return j, varyPos
}

// flushSpill scores the pending non-run plans [from, to) — a singleton
// through the scalar fused kernel, longer stretches through the CSR
// kernel with operands gathered per plan.
func (c *context) flushSpill(plans []*planspace.Plan, sel []int32, union bool, from, to int, bounds, counts []int32) {
	if to-from == 1 {
		counts[from] = int32(bitset.IntersectCountAndNot(c.gatherSets(batchAt(plans, sel, from), union), c.covered))
		c.countKernel()
		return
	}
	c.bops = c.bops[:0]
	offs := c.arena.Int32s(to - from + 1)
	for k := from; k < to; k++ {
		for _, nd := range batchAt(plans, sel, k).Nodes {
			c.bops = append(c.bops, c.nodeSetShared(nd, union))
		}
		offs[k-from+1] = int32(len(c.bops))
	}
	bitset.BatchIntersectCountAndNot(c.bops, offs, c.covered, bounds[from:to], counts[from:to])
	c.countKernel()
}

var _ measure.BatchEvaluator = (*context)(nil)
var _ measure.ScratchResetter = (*context)(nil)
