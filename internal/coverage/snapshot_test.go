package coverage_test

import (
	"math/rand"
	"testing"
	"testing/quick"

	"qporder/internal/abstraction"
	"qporder/internal/coverage"
	"qporder/internal/measure"
	"qporder/internal/obs"
	"qporder/internal/planspace"
)

// TestCachedMatchesUncachedDifferential drives a cached and an uncached
// context through an identical randomized schedule of Evaluate (concrete
// and abstract, including re-abstraction so content-keyed caching is
// exercised), Observe, Independent, and IndependentWitness calls, and
// requires bit-identical intervals plus identical Evals/IndepStats
// counters. The uncached context runs the original multi-pass
// composition, so this is a full differential check of the fused-kernel
// snapshot implementation.
func TestCachedMatchesUncachedDifferential(t *testing.T) {
	cfg := &quick.Config{MaxCount: 25}
	prop := func(seed int64) bool {
		d := domain(seed)
		cached := coverage.NewMeasure(d.Coverage).NewContext()
		plain := coverage.NewMeasureUncached(d.Coverage).NewContext()
		rng := rand.New(rand.NewSource(seed ^ 0xcafe))
		all := d.Space.Enumerate()
		h := abstraction.ByKey("sim", d.SimilarityKey)

		evalBoth := func(p *planspace.Plan) bool {
			a, b := cached.Evaluate(p), plain.Evaluate(p)
			if a != b {
				t.Logf("seed=%d plan %s: cached %v != uncached %v", seed, p.Key(), a, b)
				return false
			}
			return true
		}

		for round := 0; round < 3; round++ {
			// Fresh hierarchy per round: distinct Node objects with
			// identical content, as iDrips produces every Next.
			frontier := []*planspace.Plan{d.Space.Root(h)}
			for len(frontier) > 0 {
				p := frontier[rng.Intn(len(frontier))]
				if !evalBoth(p) {
					return false
				}
				if p.Concrete() {
					break
				}
				frontier = p.Refine()
			}
			for i := 0; i < 5; i++ {
				if !evalBoth(all[rng.Intn(len(all))]) {
					return false
				}
			}
			pp, dd := all[rng.Intn(len(all))], all[rng.Intn(len(all))]
			if cached.Independent(pp, dd) != plain.Independent(pp, dd) {
				t.Logf("seed=%d: Independent disagrees", seed)
				return false
			}
			root := d.Space.Root(h)
			if cached.IndependentWitness(root, cached.Executed()) !=
				plain.IndependentWitness(root, plain.Executed()) {
				t.Logf("seed=%d: IndependentWitness disagrees", seed)
				return false
			}
			obsPlan := all[rng.Intn(len(all))]
			cached.Observe(obsPlan)
			plain.Observe(obsPlan)
		}
		if cached.Evals() != plain.Evals() {
			t.Logf("seed=%d: Evals %d != %d", seed, cached.Evals(), plain.Evals())
			return false
		}
		cc, ch := cached.IndepStats()
		pc, ph := plain.IndepStats()
		if cc != pc || ch != ph {
			t.Logf("seed=%d: IndepStats (%d,%d) != (%d,%d)", seed, cc, ch, pc, ph)
			return false
		}
		return true
	}
	if err := quick.Check(prop, cfg); err != nil {
		t.Error(err)
	}
}

// TestForkContextMatchesReplay verifies the fast fork: a fork taken
// mid-run must evaluate exactly like a fresh context that replayed the
// executed prefix, and must stay independent of the parent afterwards.
func TestForkContextMatchesReplay(t *testing.T) {
	d := domain(17)
	ms := coverage.NewMeasure(d.Coverage)
	ctx := ms.NewContext()
	all := d.Space.Enumerate()
	for _, p := range all[:3] {
		ctx.Observe(p)
	}

	fork := measure.Fork(ctx)
	if fork.Evals() != 0 {
		t.Errorf("fork Evals = %d, want 0", fork.Evals())
	}
	if len(fork.Executed()) != len(ctx.Executed()) {
		t.Fatalf("fork executed prefix %d, want %d", len(fork.Executed()), len(ctx.Executed()))
	}
	replay := ms.NewContext()
	for _, p := range ctx.Executed() {
		replay.Observe(p)
	}
	root := d.Space.Root(abstraction.ByKey("sim", d.SimilarityKey))
	for _, p := range append([]*planspace.Plan{root}, all...) {
		if a, b := fork.Evaluate(p), replay.Evaluate(p); a != b {
			t.Fatalf("plan %s: fork %v != replay %v", p.Key(), a, b)
		}
	}
	// Diverge the parent; the fork must not see it.
	before := fork.Evaluate(all[5])
	ctx.Observe(all[5])
	if after := fork.Evaluate(all[5]); after != before {
		t.Error("parent Observe leaked into fork")
	}
}

// TestSnapshotObsCounters checks that Bind exposes the snapshot hit/miss
// and kernel counters and that they move.
func TestSnapshotObsCounters(t *testing.T) {
	d := domain(5)
	ctx := coverage.NewMeasure(d.Coverage).NewContext()
	reg := obs.NewRegistry()
	ctx.Bind(reg, "measure.cov")
	all := d.Space.Enumerate()
	for _, p := range all { // concrete, nothing memoized: one kernel each
		ctx.Evaluate(p)
	}
	ctx.Observe(all[0]) // admits all[0]'s answer set: one miss, one kernel
	hits := reg.Counter("measure.cov.snapshot_hits").Value()
	misses := reg.Counter("measure.cov.snapshot_misses").Value()
	kernels := reg.Counter("measure.cov.kernel_calls").Value()
	if misses != 1 {
		t.Errorf("snapshot_misses = %d, want 1 (only Observe admits)", misses)
	}
	if hits != 0 {
		t.Errorf("snapshot_hits = %d, want 0 (nothing re-observed yet)", hits)
	}
	if kernels != int64(len(all))+1 {
		t.Errorf("kernel_calls = %d, want %d (one per evaluation plus Observe)", kernels, len(all)+1)
	}
	if got := reg.Counter("measure.cov.evals").Value(); got != int64(len(all)) {
		t.Errorf("evals = %d, want %d", got, len(all))
	}
	ctx.Observe(all[0]) // second Observe of the same plan: a local-front hit
	if got := reg.Counter("measure.cov.snapshot_hits").Value(); got != 1 {
		t.Errorf("snapshot_hits after re-Observe = %d, want 1", got)
	}
}

// TestSharedSnapshotAcrossContexts: a second context of the same measure
// must hit the snapshot warmed by the first, even through fresh Node
// objects (content keys, not pointers).
func TestSharedSnapshotAcrossContexts(t *testing.T) {
	d := domain(9)
	ms := coverage.NewMeasure(d.Coverage)
	h := abstraction.ByKey("sim", d.SimilarityKey)

	warm := ms.NewContext()
	reg1 := obs.NewRegistry()
	warm.Bind(reg1, "m")
	warm.Evaluate(d.Space.Root(h))

	second := ms.NewContext()
	reg2 := obs.NewRegistry()
	second.Bind(reg2, "m")
	second.Evaluate(d.Space.Root(h)) // fresh hierarchy, same content
	if miss := reg2.Counter("m.snapshot_misses").Value(); miss != 0 {
		t.Errorf("second context misses = %d, want 0 (snapshot shared)", miss)
	}
	if hit := reg2.Counter("m.snapshot_hits").Value(); hit == 0 {
		t.Error("second context recorded no snapshot hits")
	}
}
