package coverage

import (
	"qporder/internal/abstraction"
	"qporder/internal/measure"
	"qporder/internal/planspace"
)

// This file is the bulk-independence path: a PI-style recompute sweep
// asks Independent(p, d) for every alive plan against one fixed delta.
// The context materializes Overlap(v, dᵢ) for every registered source v
// into one bit-row per position (a few hundred Overlap probes, all
// memoized in the model's matrix) and flattens the swept plan list into
// a per-position array of leaf source IDs, so each of the sweep's tens
// of thousands of checks is a handful of int32 loads and bit tests with
// no pointer chasing. The verdicts and IndepStats deltas are exactly
// those of the scalar loop: one counted query per examined plan, one
// hit per independent verdict.

// IndependentSweep implements measure.BulkIndependent.
func (c *context) IndependentSweep(plans []*planspace.Plan, d *planspace.Plan, alive, indep []bool) {
	q := d.Len()
	if !d.Concrete() || c.model.MaxID() < 0 || len(plans) == 0 ||
		len(plans[0].Nodes) != q || !c.primeIndepIDs(plans) {
		// Rare shape (abstract delta, arity mismatch, unstable plan
		// list): the scalar oracle per plan.
		checks, hits := 0, 0
		for i, p := range plans {
			if alive != nil && !alive[i] {
				continue
			}
			checks++
			v := c.independentOracle(p, d)
			indep[i] = v
			if v {
				hits++
			}
		}
		c.CountIndeps(checks, hits)
		return
	}
	c.primeIndepRows(d)
	rows := c.indepRows
	ids := c.indepIDs
	checks, hits := 0, 0
	for i, p := range plans {
		if alive != nil && !alive[i] {
			continue
		}
		checks++
		ind := false
		base := i * q
		if ids[base] == indepSlow {
			ind = c.sweepSlow(p, q)
		} else {
			for pos := 0; pos < q; pos++ {
				id := uint(ids[base+pos])
				if rows[pos][id>>6]&(1<<(id&63)) == 0 {
					ind = true
					break
				}
			}
		}
		indep[i] = ind
		if ind {
			hits++
		}
	}
	c.CountIndeps(checks, hits)
}

// indepSlow in slot 0 of a plan's ID stride marks a plan the flat scan
// cannot judge (abstract node or arity mismatch): it takes the
// per-node slow path instead.
const indepSlow = -1

// primeIndepIDs points the flattened leaf-ID cache at the given plan
// list, rebuilding it only when the list changes. PI sweeps the same
// static slice after every output, so steady state is one slice-header
// comparison. Plans and the slices holding them are immutable by the
// planspace contract, so slice identity (backing array plus length)
// implies identical contents. Reports false when the list's plans are
// not uniformly of the first plan's arity with in-row source IDs — the
// caller falls back to the scalar oracle.
func (c *context) primeIndepIDs(plans []*planspace.Plan) bool {
	if len(c.indepPlans) == len(plans) && &c.indepPlans[0] == &plans[0] {
		return true
	}
	q := len(plans[0].Nodes)
	maxID := c.model.MaxID()
	need := len(plans) * q
	if cap(c.indepIDs) < need {
		c.indepIDs = make([]int32, need)
	}
	c.indepIDs = c.indepIDs[:need]
	for i, p := range plans {
		base := i * q
		if len(p.Nodes) != q {
			c.indepIDs[base] = indepSlow
			continue
		}
		for pos, n := range p.Nodes {
			if len(n.Sources) != 1 || int(n.Sources[0]) < 0 || int(n.Sources[0]) > maxID {
				c.indepIDs[base] = indepSlow
				break
			}
			c.indepIDs[base+pos] = int32(n.Sources[0])
		}
	}
	c.indepPlans = plans
	return true
}

// sweepSlow is the flat scan's per-node fallback for plans it could not
// flatten: the same ∃-position no-overlap test over node structure.
func (c *context) sweepSlow(p *planspace.Plan, q int) bool {
	if p.Len() != q {
		return false
	}
	for pos, n := range p.Nodes {
		if !c.mayOverlap(pos, n) {
			return true
		}
	}
	return false
}

// primeIndepRows points the overlap rows at delta d, reusing row
// storage across sweeps. Rows depend only on the immutable model and d
// — never on the executed prefix — so a repeated delta keeps its rows.
func (c *context) primeIndepRows(d *planspace.Plan) {
	if c.indepD == d {
		return
	}
	c.indepD = d
	q := d.Len()
	words := c.model.MaxID()/64 + 1
	c.indepSrc = c.indepSrc[:0]
	for _, n := range d.Nodes {
		c.indepSrc = append(c.indepSrc, n.Source())
	}
	for len(c.indepRows) < q {
		c.indepRows = append(c.indepRows, nil)
	}
	for pos := 0; pos < q; pos++ {
		if len(c.indepRows[pos]) < words {
			c.indepRows[pos] = make([]uint64, words)
		}
		c.model.OverlapRow(c.indepSrc[pos], c.indepRows[pos])
	}
}

// mayOverlap reports whether some member source of n overlaps the
// sweep delta's source at pos — the group-node slow path behind the
// sweep's leaf bit tests.
func (c *context) mayOverlap(pos int, n *abstraction.Node) bool {
	for _, v := range n.Sources {
		if c.model.Overlap(v, c.indepSrc[pos]) {
			return true
		}
	}
	return false
}

var _ measure.BulkIndependent = (*context)(nil)
