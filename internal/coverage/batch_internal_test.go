package coverage

import (
	"math/rand"
	"testing"

	"qporder/internal/abstraction"
	"qporder/internal/interval"
	"qporder/internal/obs"
	"qporder/internal/planspace"
)

// TestEvaluateBatchMatchesEvaluate drives EvaluateBatch over randomized
// frontiers — Refine sibling runs, random concrete subsets with
// duplicates, and mixed abstract/concrete slices — against per-plan
// Evaluate on a scalar-mode twin and the uncached oracle, requiring
// bit-identical intervals plus identical Evals and snapshot hit/miss
// totals.
func TestEvaluateBatchMatchesEvaluate(t *testing.T) {
	model, buckets := testModel(41, 768, 3, 5)
	space := planspace.NewSpace(buckets)
	batched := NewMeasure(model).NewContext().(*context)
	scalarMs := NewMeasure(model)
	scalarMs.SetBatching(false)
	scalar := scalarMs.NewContext().(*context)
	plain := NewMeasureUncached(model).NewContext().(*context)

	all := space.Enumerate()
	rng := rand.New(rand.NewSource(99))
	h := abstraction.ByID()
	for round := 0; round < 9; round++ {
		var frontier []*planspace.Plan
		switch round % 3 {
		case 0: // Refine children of the root: the sibling-run shape
			frontier = space.Root(h).Refine()
		case 1: // random concrete plans, duplicates included
			for i := 0; i < 1+rng.Intn(2*len(all)); i++ {
				frontier = append(frontier, all[rng.Intn(len(all))])
			}
		case 2: // mixed abstract and concrete
			frontier = append(frontier, space.Root(h))
			frontier = append(frontier, space.Root(h).Refine()...)
			for i := 0; i < 5; i++ {
				frontier = append(frontier, all[rng.Intn(len(all))])
			}
		}
		out := make([]interval.Interval, len(frontier))
		batched.EvaluateBatch(frontier, out)
		for i, p := range frontier {
			a, b := scalar.Evaluate(p), plain.Evaluate(p)
			if out[i] != a || out[i] != b {
				t.Fatalf("round %d plan %s: batch %v, scalar %v, uncached %v",
					round, p.Key(), out[i], a, b)
			}
		}
		if batched.Evals() != scalar.Evals() {
			t.Fatalf("round %d: Evals %d != scalar %d", round, batched.Evals(), scalar.Evals())
		}
		obsPlan := all[rng.Intn(len(all))]
		batched.Observe(obsPlan)
		scalar.Observe(obsPlan)
		plain.Observe(obsPlan)
	}
	// Misses are actual kernel computations admitted to the snapshot and
	// must match the scalar path exactly; hits may only drop (sibling
	// runs resolve shared prefix nodes once per run, not once per plan).
	bh, bm, _ := batched.SnapshotStats()
	sh, sm, _ := scalar.SnapshotStats()
	if bm != sm {
		t.Errorf("snapshot misses: batch %d != scalar %d", bm, sm)
	}
	if bh > sh {
		t.Errorf("snapshot hits: batch %d > scalar %d", bh, sh)
	}
	calls, plans := batched.BatchStats()
	if calls == 0 || plans == 0 {
		t.Error("batch path never engaged")
	}
}

// TestUncachedEvaluateBatchFallsBack: an uncached context exposes the
// same EvaluateBatch entry point but runs the scalar loop — identical
// results, no batch telemetry.
func TestUncachedEvaluateBatchFallsBack(t *testing.T) {
	model, buckets := testModel(7, 256, 2, 4)
	space := planspace.NewSpace(buckets)
	ctx := NewMeasureUncached(model).NewContext().(*context)
	oracle := NewMeasureUncached(model).NewContext().(*context)
	all := space.Enumerate()
	out := make([]interval.Interval, len(all))
	ctx.EvaluateBatch(all, out)
	for i, p := range all {
		if want := oracle.Evaluate(p); out[i] != want {
			t.Fatalf("plan %s: fallback %v != Evaluate %v", p.Key(), out[i], want)
		}
	}
	if calls, plans := ctx.BatchStats(); calls != 0 || plans != 0 {
		t.Errorf("uncached BatchStats = (%d,%d), want (0,0)", calls, plans)
	}
}

// TestBatchObsCounters checks that Bind exposes batch_calls,
// batch_plans, and the arena_bytes gauge and that they move with
// EvaluateBatch.
func TestBatchObsCounters(t *testing.T) {
	model, buckets := testModel(13, 256, 2, 4)
	space := planspace.NewSpace(buckets)
	ctx := NewMeasure(model).NewContext().(*context)
	reg := obs.NewRegistry()
	ctx.Bind(reg, "measure.cov")
	all := space.Enumerate()
	out := make([]interval.Interval, len(all))
	ctx.EvaluateBatch(all, out)
	if got := reg.Counter("measure.cov.batch_calls").Value(); got != 1 {
		t.Errorf("batch_calls = %d, want 1", got)
	}
	if got := reg.Counter("measure.cov.batch_plans").Value(); got != int64(len(all)) {
		t.Errorf("batch_plans = %d, want %d", got, len(all))
	}
	if got := reg.Gauge("measure.cov.arena_bytes").Value(); got <= 0 {
		t.Errorf("arena_bytes = %g, want > 0", got)
	}
	if got := reg.Counter("measure.cov.evals").Value(); got != int64(len(all)) {
		t.Errorf("evals = %d, want %d", got, len(all))
	}
}

// TestEvaluateBatchZeroAllocs is the allocation-regression gate for the
// batched hot path: after one warm-up frontier (slabs grown, CSR
// buffers sized, snapshot fronts filled), a full mixed frontier
// evaluation must not touch the heap at all.
func TestEvaluateBatchZeroAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are distorted under -race")
	}
	model, buckets := testModel(43, 4096, 3, 4)
	space := planspace.NewSpace(buckets)
	ctx := NewMeasure(model).NewContext().(*context)
	root := space.Root(abstraction.ByID())
	frontier := append([]*planspace.Plan{root}, root.Refine()...)
	frontier = append(frontier, space.Enumerate()...)
	out := make([]interval.Interval, len(frontier))
	ctx.EvaluateBatch(frontier, out) // warm
	ctx.Observe(space.Enumerate()[0])
	if avg := testing.AllocsPerRun(100, func() {
		ctx.EvaluateBatch(frontier, out)
	}); avg != 0 {
		t.Errorf("EvaluateBatch allocates %.2f allocs per frontier, want 0", avg)
	}
}

// TestResetScratchKeepsResultsStable: resetting the arena between
// frontiers (the per-request hook) must not disturb subsequent results
// or leak stale state into them.
func TestResetScratchKeepsResultsStable(t *testing.T) {
	model, buckets := testModel(47, 512, 3, 4)
	space := planspace.NewSpace(buckets)
	ctx := NewMeasure(model).NewContext().(*context)
	all := space.Enumerate()
	out := make([]interval.Interval, len(all))
	ctx.EvaluateBatch(all, out)
	want := append([]interval.Interval(nil), out...)
	ctx.ResetScratch()
	ctx.EvaluateBatch(all, out)
	for i := range out {
		if out[i] != want[i] {
			t.Fatalf("plan %d: %v after ResetScratch, want %v", i, out[i], want[i])
		}
	}
}
