package coverage

import (
	"qporder/internal/abstraction"
	"qporder/internal/arena"
	"qporder/internal/bitset"
	"qporder/internal/interval"
	"qporder/internal/lav"
	"qporder/internal/measure"
	"qporder/internal/obs"
	"qporder/internal/planspace"
)

// Measure is the plan-coverage utility measure. It is not fully monotonic
// (the value of a source depends on what its partners and the executed
// plans cover), it satisfies utility-diminishing returns, and plans are
// often pairwise independent, so both iDrips and Streamer apply.
type Measure struct {
	model *Model
	snap  *snapshot // shared answer-set memo; nil disables caching
	batch bool      // frontier-batched EvaluateBatch path (cached mode)
}

// NewMeasure returns the coverage measure over the given model. Contexts
// share a measure-owned snapshot of answer sets (see snapshot.go): every
// answer set is a pure function of the immutable model, so one context's
// work — or one iDrips Next's, or one parallel worker's — is every other
// context's cache hit. Contexts also implement measure.BatchEvaluator
// (see batch.go), scoring whole refinement frontiers through the tiled
// prefix-sharing kernels with arena-backed scratch.
func NewMeasure(m *Model) *Measure {
	return &Measure{model: m, snap: newSnapshot(defaultSnapshotCap), batch: true}
}

// NewMeasureUncached returns the coverage measure with the shared
// snapshot disabled: every context recomputes answer sets from scratch
// with the original multi-pass composition. It exists as the differential
// oracle for the cached implementation — both must produce bit-identical
// intervals and identical work counters — and as an ablation baseline.
func NewMeasureUncached(m *Model) *Measure { return &Measure{model: m} }

// SetBatching toggles the frontier-batched evaluation path (on by
// default for cached measures; uncached measures always run scalar).
// The scalar path is the differential oracle for the batched one: the
// parity tests order identical workloads under both settings and demand
// byte-identical output. Not safe to flip while contexts are in flight.
func (ms *Measure) SetBatching(on bool) { ms.batch = on }

// Name implements measure.Measure.
func (ms *Measure) Name() string { return "coverage" }

// FullyMonotonic implements measure.Measure; coverage is not monotonic.
func (ms *Measure) FullyMonotonic() bool { return false }

// DiminishingReturns implements measure.Measure: executing more plans can
// only shrink the set of new tuples a plan would return.
func (ms *Measure) DiminishingReturns() bool { return true }

// BucketOrder implements measure.Measure; no per-bucket total order exists.
func (ms *Measure) BucketOrder(int, []lav.SourceID) ([]lav.SourceID, bool) {
	return nil, false
}

// Model returns the underlying coverage model.
func (ms *Measure) Model() *Model { return ms.model }

// NewContext implements measure.Measure.
func (ms *Measure) NewContext() measure.Context {
	c := &context{
		model:   ms.model,
		ms:      ms,
		covered: bitset.New(ms.model.universe),
		inter:   make(map[*abstraction.Node]*bitset.Set),
		union:   make(map[*abstraction.Node]*bitset.Set),
		scratch: bitset.New(ms.model.universe),
		snap:    ms.snap,
		arena:   arena.New(),
	}
	if c.snap != nil {
		c.planLocal = make(map[string]*bitset.Set)
	}
	return c
}

// context evaluates conditional coverage. With the shared snapshot
// enabled (the default), answer sets are memoized across contexts and
// utilities are computed by the fused single-pass bitset kernels; the
// only per-context mutable state is the covered set. The maps inter,
// union, and planLocal are pointer/string-keyed local fronts over the
// snapshot: a local hit costs one map probe and no interface boxing,
// which keeps the warm Evaluate path allocation-free.
//
// With snap == nil the context runs the original multi-pass composition
// (clone + per-node IntersectWith + scratch DifferenceCount) with
// per-context caches only.
type context struct {
	measure.Base
	model   *Model
	ms      *Measure
	covered *bitset.Set // union of executed plans' answer sets
	snap    *snapshot   // nil in uncached mode

	// inter and union cache, per abstraction node, the intersection and
	// union of the members' covered subsets; for a node N they satisfy
	// inter(N) ⊆ set(V) ⊆ union(N) for every member V, which makes
	// abstract-plan intervals sound. In cached mode they front the shared
	// snapshot; in uncached mode they are the only cache.
	inter     map[*abstraction.Node]*bitset.Set
	union     map[*abstraction.Node]*bitset.Set
	planLocal map[string]*bitset.Set // cached mode: plan key -> answer set
	scratch   *bitset.Set
	gather    []*bitset.Set // reusable kernel operand buffer

	// Batched-evaluation state (see batch.go): a per-context bump arena
	// for word/span scratch, reusable operand buffers for the CSR and
	// prefix-sharing kernel forms, and batch telemetry. The arena is
	// reset per frontier and, via ResetScratch, between requests.
	arena   *arena.Arena
	bops    []*bitset.Set // flat CSR operand buffer
	bprefix []*bitset.Set // shared-prefix operands of the current run
	bvars   []*bitset.Set // per-sibling varying operand of the current run

	// Bulk-independence state (see indep.go): for the fixed delta of a
	// recompute sweep, per-position overlap rows materialize
	// Overlap(v, dᵢ) by source ID so each of the sweep's many checks is
	// a bit test per position instead of a model probe. Rows are a pure
	// function of (model, delta) — prefix-independent — so they stay
	// valid for as long as the same delta is swept.
	indepD    *planspace.Plan
	indepSrc  []lav.SourceID
	indepRows [][]uint64
	// Flattened leaf source IDs of the last-swept plan list (stride =
	// query length, indepSlow marks unflattenable plans), keyed by the
	// list's slice identity.
	indepPlans []*planspace.Plan
	indepIDs   []int32

	// Snapshot telemetry: local+shared hits, misses (computations), and
	// fused-kernel invocations, with optional obs mirrors (see Bind).
	snapHits    int
	snapMisses  int
	kernelCalls int
	batchCalls  int // EvaluateBatch invocations that took the tiled path
	batchPlans  int // plans scored through the tiled path
	cSnapHits   *obs.Counter
	cSnapMisses *obs.Counter
	cKernel     *obs.Counter
	cBatchCalls *obs.Counter
	cBatchPlans *obs.Counter
	gArena      *obs.Gauge
}

// Measure implements measure.Context.
func (c *context) Measure() measure.Measure { return c.ms }

// Bind implements measure.Context, adding the snapshot counters
// "<prefix>.snapshot_hits", "<prefix>.snapshot_misses", and
// "<prefix>.kernel_calls", the batch counters "<prefix>.batch_calls"
// and "<prefix>.batch_plans", and the "<prefix>.arena_bytes" gauge to
// the base set.
func (c *context) Bind(reg *obs.Registry, prefix string) {
	c.Base.Bind(reg, prefix)
	if reg == nil {
		c.cSnapHits, c.cSnapMisses, c.cKernel = nil, nil, nil
		c.cBatchCalls, c.cBatchPlans, c.gArena = nil, nil, nil
		return
	}
	c.cSnapHits = reg.Counter(prefix + ".snapshot_hits")
	c.cSnapMisses = reg.Counter(prefix + ".snapshot_misses")
	c.cKernel = reg.Counter(prefix + ".kernel_calls")
	c.cBatchCalls = reg.Counter(prefix + ".batch_calls")
	c.cBatchPlans = reg.Counter(prefix + ".batch_plans")
	c.gArena = reg.Gauge(prefix + ".arena_bytes")
}

// SnapshotStats returns the context's snapshot hit/miss counts and the
// number of fused-kernel invocations (all zero in uncached mode).
func (c *context) SnapshotStats() (hits, misses, kernels int) {
	return c.snapHits, c.snapMisses, c.kernelCalls
}

// BatchStats returns the number of frontiers scored through the tiled
// batch path and the total plans they contained.
func (c *context) BatchStats() (calls, plans int) {
	return c.batchCalls, c.batchPlans
}

// ResetScratch implements measure.ScratchResetter: it releases the
// arena's per-frontier scratch back to the slabs (capacity retained) so
// a long-lived serving context holds only its steady-state footprint
// between requests.
func (c *context) ResetScratch() { c.arena.Reset() }

func (c *context) countHit()  { c.snapHits++; c.cSnapHits.Inc() }
func (c *context) countMiss() { c.snapMisses++; c.cSnapMisses.Inc() }
func (c *context) countKernel() {
	c.kernelCalls++
	c.cKernel.Inc()
}

func (c *context) countBatch(plans int) {
	c.batchCalls++
	c.batchPlans += plans
	c.cBatchCalls.Inc()
	c.cBatchPlans.Add(int64(plans))
	c.gArena.Set(float64(c.arena.Bytes()))
}

// ForkContext implements measure.Forker: the covered set and executed
// prefix are copied directly instead of replaying Observe over the
// prefix, so forking costs O(universe words + prefix length) no matter
// how much work the parent has done. The shared snapshot carries over by
// construction; the local front maps start empty and re-warm from it.
func (c *context) ForkContext() measure.Context {
	f := c.ms.NewContext().(*context)
	f.covered.Copy(c.covered)
	f.SeedExecuted(c.Executed())
	return f
}

// nodeSetShared returns the ∩ (union=false) or ∪ (union=true) of the
// node's member sets in cached mode, consulting the local front map, then
// the shared snapshot, and computing with a fused kernel only when both
// miss. Computed sets are admitted to the snapshot while it has room.
func (c *context) nodeSetShared(n *abstraction.Node, union bool) *bitset.Set {
	if n.IsLeaf() {
		return c.model.Set(n.Source())
	}
	local, shared := c.inter, &c.snap.inter
	if union {
		local, shared = c.union, &c.snap.union
	}
	if s, ok := local[n]; ok {
		c.countHit()
		return s
	}
	k := n.Key()
	if v, ok := shared.Load(k); ok {
		c.countHit()
		s := v.(*bitset.Set)
		local[n] = s
		return s
	}
	c.countMiss()
	sets := make([]*bitset.Set, len(n.Sources))
	for i, src := range n.Sources {
		sets[i] = c.model.Set(src)
	}
	s := bitset.New(c.model.universe)
	if union {
		bitset.UnionInto(s, sets)
	} else {
		bitset.IntersectInto(s, sets)
	}
	c.countKernel()
	if c.snap.roomFor() {
		if prev, loaded := shared.LoadOrStore(k, s); loaded {
			s = prev.(*bitset.Set)
		} else {
			c.snap.count.Add(1)
		}
	}
	local[n] = s
	return s
}

// gatherSets collects the kernel operands for plan p into the context's
// reusable buffer: one set per node (leaf answer set, or the group's
// intersection/union per the union flag).
func (c *context) gatherSets(p *planspace.Plan, union bool) []*bitset.Set {
	c.gather = c.gather[:0]
	for _, n := range p.Nodes {
		c.gather = append(c.gather, c.nodeSetShared(n, union))
	}
	return c.gather
}

// planAnswer returns the memoized exact answer set of concrete plan p,
// computing and admitting it on a miss; nil when the snapshot is at
// capacity and p is not cached — the caller then computes with a fused
// kernel instead. (Past capacity the shared probe is skipped too: boxing
// the key per call would reintroduce an allocation on the hot path.)
//
// planAnswer is called from Observe only: an executed plan's answer set
// folds into covered here and again in every fork and sibling context
// that observes the same plan, so memoizing it always pays. Evaluate
// deliberately bypasses this memo — an ordering run evaluates most
// concrete plans exactly once and never re-evaluates executed ones, so
// both the eager store (set allocation plus sync.Map insert) and even a
// read-only probe (string-key hash per call) cost more than the one
// fused-kernel pass they could save.
func (c *context) planAnswer(p *planspace.Plan) *bitset.Set {
	k := p.Key()
	if s, ok := c.planLocal[k]; ok {
		c.countHit()
		return s
	}
	if !c.snap.roomFor() {
		c.countMiss()
		return nil
	}
	if v, ok := c.snap.plans.Load(k); ok {
		c.countHit()
		s := v.(*bitset.Set)
		c.planLocal[k] = s
		return s
	}
	c.countMiss()
	s := bitset.New(c.model.universe)
	bitset.IntersectInto(s, c.gatherSets(p, false))
	c.countKernel()
	if prev, loaded := c.snap.plans.LoadOrStore(k, s); loaded {
		s = prev.(*bitset.Set)
	} else {
		c.snap.count.Add(1)
	}
	c.planLocal[k] = s
	return s
}

// nodeInter returns ∩ of member sets, cached per context (uncached mode).
func (c *context) nodeInter(n *abstraction.Node) *bitset.Set {
	if n.IsLeaf() {
		return c.model.Set(n.Source())
	}
	if s, ok := c.inter[n]; ok {
		return s
	}
	s := c.model.Set(n.Sources[0]).Clone()
	for _, src := range n.Sources[1:] {
		s.IntersectWith(c.model.Set(src))
	}
	c.inter[n] = s
	return s
}

// nodeUnion returns ∪ of member sets, cached per context (uncached mode).
func (c *context) nodeUnion(n *abstraction.Node) *bitset.Set {
	if n.IsLeaf() {
		return c.model.Set(n.Source())
	}
	if s, ok := c.union[n]; ok {
		return s
	}
	s := c.model.Set(n.Sources[0]).Clone()
	for _, src := range n.Sources[1:] {
		s.UnionWith(c.model.Set(src))
	}
	c.union[n] = s
	return s
}

// answerLow computes into dst the guaranteed answer set ∩ᵢ inter(nodeᵢ).
func (c *context) answerLow(p *planspace.Plan, dst *bitset.Set) {
	dst.Copy(c.nodeInter(p.Nodes[0]))
	for _, n := range p.Nodes[1:] {
		dst.IntersectWith(c.nodeInter(n))
	}
}

// answerHigh computes into dst the possible answer set ∩ᵢ union(nodeᵢ).
func (c *context) answerHigh(p *planspace.Plan, dst *bitset.Set) {
	dst.Copy(c.nodeUnion(p.Nodes[0]))
	for _, n := range p.Nodes[1:] {
		dst.IntersectWith(c.nodeUnion(n))
	}
}

// Evaluate implements measure.Context. Concrete plans get their exact
// conditional coverage; abstract plans get the sound interval
// [|∩inter \ covered|, |∩union \ covered|] / |U|. Cached and uncached
// modes compute the same integer cardinalities, so the returned floats
// are bit-identical.
func (c *context) Evaluate(p *planspace.Plan) interval.Interval {
	c.CountEval()
	u := float64(c.model.universe)
	if c.snap == nil {
		if p.Concrete() {
			c.answerLow(p, c.scratch)
			newTuples := c.scratch.DifferenceCount(c.covered)
			return interval.Point(float64(newTuples) / u)
		}
		c.answerLow(p, c.scratch)
		lo := float64(c.scratch.DifferenceCount(c.covered)) / u
		c.answerHigh(p, c.scratch)
		hi := float64(c.scratch.DifferenceCount(c.covered)) / u
		return interval.New(lo, hi)
	}
	if p.Concrete() {
		// Always the fused kernel, no memo probe: ordering algorithms
		// retire a plan from the candidate set once executed, so a
		// concrete plan is essentially never re-evaluated after its
		// answer set is admitted — a probe here would hash the plan key
		// on every call to hit almost never.
		n := bitset.IntersectCountAndNot(c.gatherSets(p, false), c.covered)
		c.countKernel()
		return interval.Point(float64(n) / u)
	}
	lo := bitset.IntersectCountAndNot(c.gatherSets(p, false), c.covered)
	c.countKernel()
	hi := bitset.IntersectCountAndNot(c.gatherSets(p, true), c.covered)
	c.countKernel()
	return interval.New(float64(lo)/u, float64(hi)/u)
}

// Observe implements measure.Context: the executed plan's answers join the
// covered set.
func (c *context) Observe(d *planspace.Plan) {
	c.Record(d)
	if c.snap == nil {
		c.answerLow(d, c.scratch) // concrete: low == exact
		c.covered.UnionWith(c.scratch)
		return
	}
	if ans := c.planAnswer(d); ans != nil {
		c.covered.UnionWith(ans)
		return
	}
	bitset.IntersectInto(c.scratch, c.gatherSets(d, false))
	c.countKernel()
	c.covered.UnionWith(c.scratch)
}

// Independent implements measure.Context: executing d cannot change the
// coverage of any concrete plan in p when their answer sets are provably
// disjoint. The sound procedure of Section 3: some position exists where
// no member of p's node overlaps d's source, so every represented plan's
// answer set is disjoint from d's. Pairwise overlaps are memoized in the
// model, making this a few table lookups for concrete plans.
func (c *context) Independent(p, d *planspace.Plan) bool {
	return c.CountIndep(c.independentOracle(p, d))
}

// independentOracle is Independent without the counting — shared by the
// scalar entry point and the bulk sweep's fallback path.
func (c *context) independentOracle(p, d *planspace.Plan) bool {
	if p.Len() != d.Len() {
		return false // sound: no claim for heterogeneous plan shapes
	}
	for i, n := range p.Nodes {
		di := d.Nodes[i].Source()
		overlaps := false
		for _, v := range n.Sources {
			if c.model.Overlap(v, di) {
				overlaps = true
				break
			}
		}
		if !overlaps {
			return true
		}
	}
	return false
}

// IndependentWitness implements measure.Context using the sound
// per-coordinate procedure of Section 3: if some position i has a member
// source v whose covered subset is disjoint from every d's source at i,
// then any concrete plan using v at i is independent of all of ds.
func (c *context) IndependentWitness(p *planspace.Plan, ds []*planspace.Plan) bool {
	if len(ds) == 0 {
		return true
	}
	for _, d := range ds {
		if d.Len() != p.Len() {
			return measure.EnumerateWitness(p, ds, func(a, b *planspace.Plan) bool {
				return c.Independent(a, b)
			})
		}
	}
	for i, n := range p.Nodes {
		for _, v := range n.Sources {
			ok := true
			for _, d := range ds {
				if c.model.Overlap(v, d.Nodes[i].Source()) {
					ok = false
					break
				}
			}
			if ok {
				return true
			}
		}
	}
	return false
}

var _ measure.Measure = (*Measure)(nil)
var _ measure.Context = (*context)(nil)
var _ measure.Forker = (*context)(nil)
