package coverage

import (
	"qporder/internal/abstraction"
	"qporder/internal/bitset"
	"qporder/internal/interval"
	"qporder/internal/lav"
	"qporder/internal/measure"
	"qporder/internal/planspace"
)

// Measure is the plan-coverage utility measure. It is not fully monotonic
// (the value of a source depends on what its partners and the executed
// plans cover), it satisfies utility-diminishing returns, and plans are
// often pairwise independent, so both iDrips and Streamer apply.
type Measure struct {
	model *Model
}

// NewMeasure returns the coverage measure over the given model.
func NewMeasure(m *Model) *Measure { return &Measure{model: m} }

// Name implements measure.Measure.
func (ms *Measure) Name() string { return "coverage" }

// FullyMonotonic implements measure.Measure; coverage is not monotonic.
func (ms *Measure) FullyMonotonic() bool { return false }

// DiminishingReturns implements measure.Measure: executing more plans can
// only shrink the set of new tuples a plan would return.
func (ms *Measure) DiminishingReturns() bool { return true }

// BucketOrder implements measure.Measure; no per-bucket total order exists.
func (ms *Measure) BucketOrder(int, []lav.SourceID) ([]lav.SourceID, bool) {
	return nil, false
}

// Model returns the underlying coverage model.
func (ms *Measure) Model() *Model { return ms.model }

// NewContext implements measure.Measure.
func (ms *Measure) NewContext() measure.Context {
	return &context{
		model:   ms.model,
		ms:      ms,
		covered: bitset.New(ms.model.universe),
		inter:   make(map[*abstraction.Node]*bitset.Set),
		union:   make(map[*abstraction.Node]*bitset.Set),
		scratch: bitset.New(ms.model.universe),
	}
}

// context evaluates conditional coverage. It caches, per abstraction
// node, the intersection and union of the members' covered subsets; for a
// node N they satisfy inter(N) ⊆ set(V) ⊆ union(N) for every member V,
// which makes abstract-plan intervals sound.
type context struct {
	measure.Base
	model   *Model
	ms      *Measure
	covered *bitset.Set // union of executed plans' answer sets
	inter   map[*abstraction.Node]*bitset.Set
	union   map[*abstraction.Node]*bitset.Set
	scratch *bitset.Set
}

// Measure implements measure.Context.
func (c *context) Measure() measure.Measure { return c.ms }

// nodeInter returns ∩ of member sets, cached.
func (c *context) nodeInter(n *abstraction.Node) *bitset.Set {
	if n.IsLeaf() {
		return c.model.Set(n.Source())
	}
	if s, ok := c.inter[n]; ok {
		return s
	}
	s := c.model.Set(n.Sources[0]).Clone()
	for _, src := range n.Sources[1:] {
		s.IntersectWith(c.model.Set(src))
	}
	c.inter[n] = s
	return s
}

// nodeUnion returns ∪ of member sets, cached.
func (c *context) nodeUnion(n *abstraction.Node) *bitset.Set {
	if n.IsLeaf() {
		return c.model.Set(n.Source())
	}
	if s, ok := c.union[n]; ok {
		return s
	}
	s := c.model.Set(n.Sources[0]).Clone()
	for _, src := range n.Sources[1:] {
		s.UnionWith(c.model.Set(src))
	}
	c.union[n] = s
	return s
}

// answerLow computes into dst the guaranteed answer set ∩ᵢ inter(nodeᵢ).
func (c *context) answerLow(p *planspace.Plan, dst *bitset.Set) {
	dst.Copy(c.nodeInter(p.Nodes[0]))
	for _, n := range p.Nodes[1:] {
		dst.IntersectWith(c.nodeInter(n))
	}
}

// answerHigh computes into dst the possible answer set ∩ᵢ union(nodeᵢ).
func (c *context) answerHigh(p *planspace.Plan, dst *bitset.Set) {
	dst.Copy(c.nodeUnion(p.Nodes[0]))
	for _, n := range p.Nodes[1:] {
		dst.IntersectWith(c.nodeUnion(n))
	}
}

// Evaluate implements measure.Context. Concrete plans get their exact
// conditional coverage; abstract plans get the sound interval
// [|∩inter \ covered|, |∩union \ covered|] / |U|.
func (c *context) Evaluate(p *planspace.Plan) interval.Interval {
	c.CountEval()
	u := float64(c.model.universe)
	if p.Concrete() {
		c.answerLow(p, c.scratch)
		newTuples := c.scratch.DifferenceCount(c.covered)
		return interval.Point(float64(newTuples) / u)
	}
	c.answerLow(p, c.scratch)
	lo := float64(c.scratch.DifferenceCount(c.covered)) / u
	c.answerHigh(p, c.scratch)
	hi := float64(c.scratch.DifferenceCount(c.covered)) / u
	return interval.New(lo, hi)
}

// Observe implements measure.Context: the executed plan's answers join the
// covered set.
func (c *context) Observe(d *planspace.Plan) {
	c.Record(d)
	c.answerLow(d, c.scratch) // concrete: low == exact
	c.covered.UnionWith(c.scratch)
}

// Independent implements measure.Context: executing d cannot change the
// coverage of any concrete plan in p when their answer sets are provably
// disjoint. The sound procedure of Section 3: some position exists where
// no member of p's node overlaps d's source, so every represented plan's
// answer set is disjoint from d's. Pairwise overlaps are memoized in the
// model, making this a few table lookups for concrete plans.
func (c *context) Independent(p, d *planspace.Plan) bool {
	if p.Len() != d.Len() {
		return c.CountIndep(false) // sound: no claim for heterogeneous plan shapes
	}
	for i, n := range p.Nodes {
		di := d.Nodes[i].Source()
		overlaps := false
		for _, v := range n.Sources {
			if c.model.Overlap(v, di) {
				overlaps = true
				break
			}
		}
		if !overlaps {
			return c.CountIndep(true)
		}
	}
	return c.CountIndep(false)
}

// IndependentWitness implements measure.Context using the sound
// per-coordinate procedure of Section 3: if some position i has a member
// source v whose covered subset is disjoint from every d's source at i,
// then any concrete plan using v at i is independent of all of ds.
func (c *context) IndependentWitness(p *planspace.Plan, ds []*planspace.Plan) bool {
	if len(ds) == 0 {
		return true
	}
	for _, d := range ds {
		if d.Len() != p.Len() {
			return measure.EnumerateWitness(p, ds, func(a, b *planspace.Plan) bool {
				return c.Independent(a, b)
			})
		}
	}
	for i, n := range p.Nodes {
		for _, v := range n.Sources {
			ok := true
			for _, d := range ds {
				if c.model.Overlap(v, d.Nodes[i].Source()) {
					ok = false
					break
				}
			}
			if ok {
				return true
			}
		}
	}
	return false
}

var _ measure.Measure = (*Measure)(nil)
var _ measure.Context = (*context)(nil)
