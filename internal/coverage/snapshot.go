package coverage

import (
	"sync"
	"sync/atomic"
)

// defaultSnapshotCap bounds the number of bitsets the shared snapshot
// retains (plan answer sets plus node intersection/union sets). At the
// default 4096-bit universe this caps snapshot memory near 16 MiB. Wide
// plan spaces (bucket size 80 enumerates 512k concrete plans) would
// otherwise make the memo cost more than it saves; evaluations past the
// cap fall back to the fused single-pass kernels, which are still
// allocation-free.
const defaultSnapshotCap = 1 << 15

// snapshot is the measure-owned, concurrency-safe memo of answer-set
// values that are pure functions of the immutable coverage model:
//
//   - plans: concrete plan key -> exact answer set (∩ of leaf sets)
//   - inter: node key -> ∩ of the group's member sets
//   - union: node key -> ∪ of the group's member sets
//
// Entries are immutable once stored, so sync.Map's LoadOrStore gives
// last-writer-loses semantics without locking: racing contexts compute
// identical sets and one copy wins. Contexts keep pointer-keyed local
// front maps in front of the snapshot — a local hit costs one map probe
// with no interface boxing, keeping the warm Evaluate path free of
// allocations — so the shared maps are consulted at most once per key
// per context.
//
// The snapshot belongs to the Measure, not a context: iDrips re-abstracts
// its spaces every Next and parallel evaluators fork a context per
// worker, and both previously rebuilt identical sets per context. Observe
// never invalidates anything — only the per-context covered set changes.
type snapshot struct {
	capacity int64
	count    atomic.Int64
	plans    sync.Map // string -> *bitset.Set
	inter    sync.Map // string -> *bitset.Set
	union    sync.Map // string -> *bitset.Set
}

func newSnapshot(capacity int64) *snapshot {
	return &snapshot{capacity: capacity}
}

// roomFor reports whether the snapshot may admit another set. It is a
// soft bound: concurrent admitters can overshoot by at most one set each,
// which is fine for a memory cap.
func (s *snapshot) roomFor() bool {
	return s.count.Load() < s.capacity
}
