package coverage

import (
	"math/rand"
	"testing"

	"qporder/internal/abstraction"
	"qporder/internal/bitset"
	"qporder/internal/lav"
	"qporder/internal/planspace"
)

// testModel builds a random model over nBuckets buckets of width sources
// each, returning the model and the bucket layout. (In-package tests
// cannot use the workload generator — workload imports coverage.)
func testModel(seed int64, universe, nBuckets, width int) (*Model, [][]lav.SourceID) {
	rng := rand.New(rand.NewSource(seed))
	m := NewModel(universe)
	buckets := make([][]lav.SourceID, nBuckets)
	id := lav.SourceID(0)
	for b := range buckets {
		for j := 0; j < width; j++ {
			s := bitset.New(universe)
			for i := 0; i < universe; i++ {
				if rng.Intn(3) == 0 {
					s.Add(i)
				}
			}
			m.SetCoverage(id, s)
			buckets[b] = append(buckets[b], id)
			id++
		}
	}
	return m, buckets
}

// TestSnapshotCapOverflowMatchesUncapped: with a snapshot too small for
// the plan space, the fused-kernel fallback path must return the same
// utilities as an uncapped snapshot and as the uncached oracle.
func TestSnapshotCapOverflowMatchesUncapped(t *testing.T) {
	model, buckets := testModel(21, 256, 3, 4) // 64 plans
	space := planspace.NewSpace(buckets)

	tiny := &Measure{model: model, snap: newSnapshot(5)}
	full := NewMeasure(model)
	plain := NewMeasureUncached(model)
	ctxT, ctxF, ctxP := tiny.NewContext(), full.NewContext(), plain.NewContext()

	all := space.Enumerate()
	rng := rand.New(rand.NewSource(4))
	for round := 0; round < 3; round++ {
		root := space.Root(abstraction.ByID())
		for _, p := range append(all, root) {
			a, b, c := ctxT.Evaluate(p), ctxF.Evaluate(p), ctxP.Evaluate(p)
			if a != b || b != c {
				t.Fatalf("plan %s: tiny %v, full %v, uncached %v", p.Key(), a, b, c)
			}
		}
		d := all[rng.Intn(len(all))]
		ctxT.Observe(d)
		ctxF.Observe(d)
		ctxP.Observe(d)
	}
	if n := tiny.snap.count.Load(); n > 5+1 {
		// roomFor is a soft bound: single-threaded overshoot is at most one.
		t.Errorf("tiny snapshot holds %d sets, cap 5", n)
	}
}

// TestConcreteEvaluateZeroAllocs is the allocation-regression gate for
// the evaluation hot path: once a concrete plan's answer set is
// memoized, Evaluate must not allocate at all.
func TestConcreteEvaluateZeroAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are distorted under -race")
	}
	model, buckets := testModel(8, 4096, 3, 4)
	space := planspace.NewSpace(buckets)
	ctx := NewMeasure(model).NewContext().(*context)
	all := space.Enumerate()
	for _, p := range all { // warm: plan keys, snapshot, local fronts
		ctx.Evaluate(p)
	}
	ctx.Observe(all[0])
	i := 0
	if avg := testing.AllocsPerRun(200, func() {
		ctx.Evaluate(all[i%len(all)])
		i++
	}); avg != 0 {
		t.Errorf("concrete Evaluate allocates %.2f allocs/op, want 0", avg)
	}
}

// TestOverflowEvaluateZeroAllocs: the fused-kernel fallback past the
// snapshot cap must be allocation-free too.
func TestOverflowEvaluateZeroAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are distorted under -race")
	}
	model, buckets := testModel(9, 4096, 3, 4)
	space := planspace.NewSpace(buckets)
	ms := &Measure{model: model, snap: newSnapshot(0)}
	ctx := ms.NewContext().(*context)
	all := space.Enumerate()
	for _, p := range all { // warm plan key strings and the gather buffer
		ctx.Evaluate(p)
	}
	i := 0
	if avg := testing.AllocsPerRun(200, func() {
		ctx.Evaluate(all[i%len(all)])
		i++
	}); avg != 0 {
		t.Errorf("overflow Evaluate allocates %.2f allocs/op, want 0", avg)
	}
}

// TestOverlapMatrixMatchesFallback: the dense overlap matrix and the
// sync.Map fallback must agree on every pair, in both argument orders.
func TestOverlapMatrixMatchesFallback(t *testing.T) {
	withMat, _ := testModel(33, 128, 1, 12)
	noMat, _ := testModel(33, 128, 1, 12) // same seed → same sets
	noMat.maxID = maxOverlapMatrixBits    // force matrix skip
	for a := lav.SourceID(0); a < 12; a++ {
		for b := lav.SourceID(0); b < 12; b++ {
			if withMat.Overlap(a, b) != noMat.Overlap(a, b) {
				t.Fatalf("Overlap(%d,%d) disagrees between matrix and fallback", a, b)
			}
		}
	}
	if withMat.matN == 0 {
		t.Error("matrix model did not build its matrix")
	}
	if noMat.matN != 0 {
		t.Error("fallback model unexpectedly built a matrix")
	}
}
