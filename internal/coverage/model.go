// Package coverage implements the plan-coverage utility of Section 2 /
// Example 2.1: the coverage of plan p wrt executed plans {p1..pn} is the
// probability that a random answer tuple of the query is returned by p
// and by none of the executed plans.
//
// The model represents the query's answer universe as a finite synthetic
// set. Each source covers the subset of answers whose corresponding
// subgoal piece the source can supply; a concrete plan covers the
// intersection of its sources' subsets; conditional coverage is the
// fraction of the universe covered by the plan but by no executed plan.
// This preserves every property the ordering algorithms exploit:
// conditionality, diminishing returns, sound abstraction intervals
// (group-intersection ⊆ member ⊆ group-union), and an overlap-based
// independence oracle. See DESIGN.md §3.
package coverage

import (
	"fmt"
	"sync"

	"qporder/internal/bitset"
	"qporder/internal/lav"
)

// Model maps each source to the subset of the answer universe it covers.
type Model struct {
	universe int
	sets     map[lav.SourceID]*bitset.Set
	// overlapCache memoizes the pairwise overlap relation; it is a pure
	// function of the (immutable) coverage sets, so a racing double
	// computation stores the same value. A sync.Map keeps the read-mostly
	// hot path lock-free while letting the parallel ordering paths share
	// one model across worker contexts.
	overlapCache sync.Map // uint64 -> bool
}

// NewModel returns a model over a universe of the given size.
func NewModel(universe int) *Model {
	if universe <= 0 {
		panic("coverage: universe must be positive")
	}
	return &Model{
		universe: universe,
		sets:     make(map[lav.SourceID]*bitset.Set),
	}
}

// Universe returns the universe size.
func (m *Model) Universe() int { return m.universe }

// SetCoverage assigns the covered subset of a source. The set is stored by
// reference and must not be mutated afterwards; its capacity must equal
// the universe size.
func (m *Model) SetCoverage(id lav.SourceID, set *bitset.Set) {
	if set.Len() != m.universe {
		panic(fmt.Sprintf("coverage: set capacity %d != universe %d", set.Len(), m.universe))
	}
	m.sets[id] = set
}

// Set returns the covered subset of a source; it panics if the source has
// no coverage assigned (a configuration error).
func (m *Model) Set(id lav.SourceID) *bitset.Set {
	s, ok := m.sets[id]
	if !ok {
		panic(fmt.Sprintf("coverage: source V%d has no coverage set", id))
	}
	return s
}

// Has reports whether the source has a coverage set assigned.
func (m *Model) Has(id lav.SourceID) bool {
	_, ok := m.sets[id]
	return ok
}

// Overlap reports whether two sources' covered subsets intersect. This is
// the "sources overlap" relation of Section 3. Results are memoized: the
// independence oracle consults this relation millions of times per
// ordering run. Overlap is safe for concurrent use.
func (m *Model) Overlap(a, b lav.SourceID) bool {
	if a > b {
		a, b = b, a
	}
	key := uint64(uint32(a))<<32 | uint64(uint32(b))
	if v, ok := m.overlapCache.Load(key); ok {
		return v.(bool)
	}
	v := !m.Set(a).Disjoint(m.Set(b))
	m.overlapCache.Store(key, v)
	return v
}
