// Package coverage implements the plan-coverage utility of Section 2 /
// Example 2.1: the coverage of plan p wrt executed plans {p1..pn} is the
// probability that a random answer tuple of the query is returned by p
// and by none of the executed plans.
//
// The model represents the query's answer universe as a finite synthetic
// set. Each source covers the subset of answers whose corresponding
// subgoal piece the source can supply; a concrete plan covers the
// intersection of its sources' subsets; conditional coverage is the
// fraction of the universe covered by the plan but by no executed plan.
// This preserves every property the ordering algorithms exploit:
// conditionality, diminishing returns, sound abstraction intervals
// (group-intersection ⊆ member ⊆ group-union), and an overlap-based
// independence oracle. See DESIGN.md §3.
package coverage

import (
	"fmt"
	"sync"
	"sync/atomic"

	"qporder/internal/bitset"
	"qporder/internal/lav"
)

// Model maps each source to the subset of the answer universe it covers.
type Model struct {
	universe int
	sets     map[lav.SourceID]*bitset.Set
	// dense mirrors sets for small non-negative IDs: the evaluation hot
	// path reads a handful of leaf sets per plan, and a slice index beats
	// the map hash. Sparse or negative IDs stay map-only.
	dense []*bitset.Set
	maxID int // largest source ID with a coverage set; -1 when empty

	// The pairwise overlap relation is a pure function of the (immutable)
	// coverage sets, so a racing double computation stores the same value.
	// The primary memo is a dense bit matrix sized on first use — the
	// independence oracle consults the relation millions of times per run,
	// and two atomic word loads beat a sync.Map round trip (which also
	// boxes its key). The sync.Map remains as fallback for source IDs
	// registered after the matrix was sized, and for catalogs too large
	// for a dense matrix.
	matOnce          sync.Once
	matN             int // matrix covers IDs in [0, matN)
	matKnown, matVal []uint64
	overlapCache     sync.Map // uint64 -> bool

	// touch, when non-nil, is invoked on every Set lookup. The
	// store-backed loader (internal/store) installs it to drive the LRU
	// page-touch tracker: each hot-path read of a source's answer set
	// simulates faulting that source's segment pages. It must be
	// installed before the model is queried and must be safe for
	// concurrent use; it observes accesses only and must not affect
	// results.
	touch func(lav.SourceID)
}

// NewModel returns a model over a universe of the given size.
func NewModel(universe int) *Model {
	if universe <= 0 {
		panic("coverage: universe must be positive")
	}
	return &Model{
		universe: universe,
		sets:     make(map[lav.SourceID]*bitset.Set),
		maxID:    -1,
	}
}

// Universe returns the universe size.
func (m *Model) Universe() int { return m.universe }

// SetCoverage assigns the covered subset of a source. The set is stored by
// reference and must not be mutated afterwards; its capacity must equal
// the universe size.
func (m *Model) SetCoverage(id lav.SourceID, set *bitset.Set) {
	if set.Len() != m.universe {
		panic(fmt.Sprintf("coverage: set capacity %d != universe %d", set.Len(), m.universe))
	}
	m.sets[id] = set
	if int(id) > m.maxID {
		m.maxID = int(id)
	}
	if i := int(id); i >= 0 && i < maxDenseSets {
		if i >= len(m.dense) {
			grown := make([]*bitset.Set, i+1)
			copy(grown, m.dense)
			m.dense = grown
		}
		m.dense[i] = set
	}
}

// maxDenseSets bounds the dense set table so one huge ID cannot balloon
// it; IDs at or above the bound are served from the map.
const maxDenseSets = 1 << 20

// SetTouch installs a hook invoked on every Set lookup (nil uninstalls
// it). It exists for the store-backed loader's page-touch accounting and
// must be installed before the model is shared across goroutines.
func (m *Model) SetTouch(f func(lav.SourceID)) { m.touch = f }

// Set returns the covered subset of a source; it panics if the source has
// no coverage assigned (a configuration error).
func (m *Model) Set(id lav.SourceID) *bitset.Set {
	if m.touch != nil {
		m.touch(id)
	}
	if i := int(id); i >= 0 && i < len(m.dense) {
		if s := m.dense[i]; s != nil {
			return s
		}
	}
	s, ok := m.sets[id]
	if !ok {
		panic(fmt.Sprintf("coverage: source V%d has no coverage set", id))
	}
	return s
}

// MaxID returns the largest source ID with a coverage set, or -1 when
// none is registered.
func (m *Model) MaxID() int { return m.maxID }

// OverlapRow fills row — at least MaxID()/64+1 words — with one bit per
// registered source v in [0, MaxID()]: bit v is set iff Overlap(v, d).
// Unregistered IDs stay zero. The row is how bulk independence sweeps
// turn per-check model probes into single bit tests.
func (m *Model) OverlapRow(d lav.SourceID, row []uint64) {
	for i := range row {
		row[i] = 0
	}
	for id := range m.sets {
		if id < 0 {
			continue
		}
		if m.Overlap(id, d) {
			row[id/64] |= 1 << uint(id%64)
		}
	}
}

// Has reports whether the source has a coverage set assigned.
func (m *Model) Has(id lav.SourceID) bool {
	_, ok := m.sets[id]
	return ok
}

// maxOverlapMatrixBits caps each dense overlap matrix at 4 MiB
// (supporting catalogs of up to ~5700 sources); larger catalogs fall
// back to the sync.Map memo.
const maxOverlapMatrixBits = 1 << 25

// buildMatrix sizes the dense memo to the sources registered so far. It
// runs once, on the first Overlap query; sources registered later use
// the sync.Map fallback.
func (m *Model) buildMatrix() {
	n := m.maxID + 1
	if n <= 0 || n > maxOverlapMatrixBits/n {
		return
	}
	words := (n*n + 63) / 64
	m.matKnown = make([]uint64, words)
	m.matVal = make([]uint64, words)
	m.matN = n
}

// PrimeOverlap seeds the dense overlap memo from persisted rows:
// rows[a] holds one bit per source b (bit b set iff sources a and b
// overlap), in the OverlapRow layout. It returns the number of pairs
// primed. Priming lets a store-backed model answer every independence
// probe from the catalog without faulting a single segment page. It
// must be called before the model is shared across goroutines; when the
// catalog is too large for the dense matrix it is a no-op (probes fall
// back to computing disjointness from the mapped sets).
func (m *Model) PrimeOverlap(rows [][]uint64) int {
	m.matOnce.Do(m.buildMatrix)
	if m.matN == 0 {
		return 0
	}
	primed := 0
	for a := 0; a < len(rows) && a < m.matN; a++ {
		row := rows[a]
		for b := a; b < m.matN; b++ {
			if b/64 >= len(row) {
				break
			}
			idx := a*m.matN + b
			w, bit := idx/64, uint64(1)<<uint(idx%64)
			if row[b/64]&(1<<uint(b%64)) != 0 {
				m.matVal[w] |= bit
			}
			m.matKnown[w] |= bit
			primed++
		}
	}
	return primed
}

// atomicOr sets bit in *p atomically. A CAS loop rather than
// atomic.Uint64.Or, which requires Go 1.23 while the module supports 1.22.
func atomicOr(p *uint64, bit uint64) {
	for {
		old := atomic.LoadUint64(p)
		if old&bit != 0 || atomic.CompareAndSwapUint64(p, old, old|bit) {
			return
		}
	}
}

// Overlap reports whether two sources' covered subsets intersect. This is
// the "sources overlap" relation of Section 3. Results are memoized: the
// independence oracle consults this relation millions of times per
// ordering run. Overlap is safe for concurrent use.
func (m *Model) Overlap(a, b lav.SourceID) bool {
	if a > b {
		a, b = b, a
	}
	m.matOnce.Do(m.buildMatrix)
	if a >= 0 && int(b) < m.matN {
		idx := int(a)*m.matN + int(b)
		w, bit := idx/64, uint64(1)<<uint(idx%64)
		if atomic.LoadUint64(&m.matKnown[w])&bit != 0 {
			return atomic.LoadUint64(&m.matVal[w])&bit != 0
		}
		v := !m.Set(a).Disjoint(m.Set(b))
		// Publish the value bit before the known bit; Go atomics are
		// sequentially consistent, so a reader that observes known also
		// observes the value.
		if v {
			atomicOr(&m.matVal[w], bit)
		}
		atomicOr(&m.matKnown[w], bit)
		return v
	}
	key := uint64(uint32(a))<<32 | uint64(uint32(b))
	if v, ok := m.overlapCache.Load(key); ok {
		return v.(bool)
	}
	v := !m.Set(a).Disjoint(m.Set(b))
	m.overlapCache.Store(key, v)
	return v
}
