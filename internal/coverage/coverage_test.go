package coverage_test

import (
	"math/rand"
	"testing"
	"testing/quick"

	"qporder/internal/abstraction"
	"qporder/internal/bitset"
	"qporder/internal/coverage"
	"qporder/internal/lav"
	"qporder/internal/planspace"
	"qporder/internal/workload"
)

// domain builds a small random domain for property tests.
func domain(seed int64) *workload.Domain {
	return workload.Generate(workload.Config{
		QueryLen: 3, BucketSize: 5, Universe: 512, Zones: 3, Seed: seed,
	})
}

func TestModelBasics(t *testing.T) {
	m := coverage.NewModel(64)
	a := bitset.New(64)
	a.Add(1)
	a.Add(2)
	b := bitset.New(64)
	b.Add(2)
	c := bitset.New(64)
	c.Add(5)
	m.SetCoverage(0, a)
	m.SetCoverage(1, b)
	m.SetCoverage(2, c)
	if !m.Overlap(0, 1) || m.Overlap(0, 2) {
		t.Error("Overlap wrong")
	}
	if !m.Has(0) || m.Has(9) {
		t.Error("Has wrong")
	}
	if m.Universe() != 64 {
		t.Error("Universe wrong")
	}
}

func TestSetCoverageSizeMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	coverage.NewModel(64).SetCoverage(0, bitset.New(65))
}

func TestConcreteCoverageMatchesManualComputation(t *testing.T) {
	m := coverage.NewModel(8)
	s0 := bitset.New(8) // {0,1,2,3}
	for i := 0; i < 4; i++ {
		s0.Add(i)
	}
	s1 := bitset.New(8) // {2,3,4,5}
	for i := 2; i < 6; i++ {
		s1.Add(i)
	}
	m.SetCoverage(0, s0)
	m.SetCoverage(1, s1)
	ms := coverage.NewMeasure(m)
	ctx := ms.NewContext()
	leaves := abstraction.BuildLeaves([][]lav.SourceID{{0}, {1}})
	p := planspace.New(leaves[0][0], leaves[1][0])
	// ∩ = {2,3} → 2/8.
	if got := ctx.Evaluate(p); got.Lo != 0.25 || !got.IsPoint() {
		t.Errorf("coverage = %v, want 0.25", got)
	}
	ctx.Observe(p)
	// After execution everything the plan covers is covered: coverage → 0.
	if got := ctx.Evaluate(p); got.Lo != 0 {
		t.Errorf("coverage after observe = %v, want 0", got)
	}
}

// TestAbstractIntervalContainsAllMembers is the Drips soundness
// requirement: the interval of an abstract plan contains the exact
// utility of every concrete plan it represents, at every prefix depth.
func TestAbstractIntervalContainsAllMembers(t *testing.T) {
	cfg := &quick.Config{MaxCount: 40}
	prop := func(seed int64) bool {
		d := domain(seed)
		ms := coverage.NewMeasure(d.Coverage)
		ctx := ms.NewContext()
		rng := rand.New(rand.NewSource(seed ^ 0x5eed))
		all := d.Space.Enumerate()
		for round := 0; round < 3; round++ {
			root := d.Space.Root(abstraction.ByKey("sim", d.SimilarityKey))
			// Walk a few random abstract plans via refinement.
			frontier := []*planspace.Plan{root}
			for len(frontier) > 0 {
				p := frontier[rng.Intn(len(frontier))]
				frontier = nil
				iv := ctx.Evaluate(p)
				// Check every concrete plan represented by p.
				for _, c := range all {
					inside := true
					for i, n := range p.Nodes {
						found := false
						for _, s := range n.Sources {
							if c.Nodes[i].Source() == s {
								found = true
								break
							}
						}
						if !found {
							inside = false
							break
						}
					}
					if !inside {
						continue
					}
					u := ctx.Evaluate(c).Lo
					if u < iv.Lo-1e-12 || u > iv.Hi+1e-12 {
						t.Logf("seed=%d plan %s: member %s utility %g outside %v",
							seed, p.Key(), c.Key(), u, iv)
						return false
					}
				}
				if !p.Concrete() {
					frontier = p.Refine()
				}
			}
			// Execute a random plan and repeat at the deeper prefix.
			ctx.Observe(all[rng.Intn(len(all))])
		}
		return true
	}
	if err := quick.Check(prop, cfg); err != nil {
		t.Error(err)
	}
}

// TestDiminishingReturns: executing more plans never increases any plan's
// coverage.
func TestDiminishingReturns(t *testing.T) {
	cfg := &quick.Config{MaxCount: 40}
	prop := func(seed int64) bool {
		d := domain(seed)
		ms := coverage.NewMeasure(d.Coverage)
		ctx := ms.NewContext()
		rng := rand.New(rand.NewSource(seed ^ 0xd1))
		all := d.Space.Enumerate()
		prev := make(map[string]float64)
		for _, p := range all {
			prev[p.Key()] = ctx.Evaluate(p).Lo
		}
		for round := 0; round < 4; round++ {
			ctx.Observe(all[rng.Intn(len(all))])
			for _, p := range all {
				u := ctx.Evaluate(p).Lo
				if u > prev[p.Key()]+1e-12 {
					return false
				}
				prev[p.Key()] = u
			}
		}
		return true
	}
	if err := quick.Check(prop, cfg); err != nil {
		t.Error(err)
	}
}

// TestIndependenceOracleSound: when the oracle declares p independent of
// d, executing d must leave p's utility unchanged.
func TestIndependenceOracleSound(t *testing.T) {
	cfg := &quick.Config{MaxCount: 60}
	prop := func(seed int64) bool {
		d := domain(seed)
		ms := coverage.NewMeasure(d.Coverage)
		ctx := ms.NewContext()
		rng := rand.New(rand.NewSource(seed ^ 0x0ac))
		all := d.Space.Enumerate()
		for round := 0; round < 4; round++ {
			dPlan := all[rng.Intn(len(all))]
			before := make(map[string]float64)
			indep := make(map[string]bool)
			for _, p := range all {
				before[p.Key()] = ctx.Evaluate(p).Lo
				indep[p.Key()] = ctx.Independent(p, dPlan)
			}
			ctx.Observe(dPlan)
			for _, p := range all {
				if indep[p.Key()] && ctx.Evaluate(p).Lo != before[p.Key()] {
					t.Logf("seed=%d: plan %s declared independent of %s but changed", seed, p.Key(), dPlan.Key())
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(prop, cfg); err != nil {
		t.Error(err)
	}
}

// TestIndependentWitnessSound: a successful witness means some concrete
// member is genuinely independent of all the given plans.
func TestIndependentWitnessSound(t *testing.T) {
	d := domain(7)
	ms := coverage.NewMeasure(d.Coverage)
	ctx := ms.NewContext()
	rng := rand.New(rand.NewSource(99))
	all := d.Space.Enumerate()
	root := d.Space.Root(abstraction.ByKey("sim", d.SimilarityKey))
	frontier := []*planspace.Plan{root}
	checked := 0
	for len(frontier) > 0 && checked < 200 {
		p := frontier[0]
		frontier = frontier[1:]
		if !p.Concrete() {
			frontier = append(frontier, p.Refine()...)
		}
		ds := []*planspace.Plan{all[rng.Intn(len(all))], all[rng.Intn(len(all))]}
		if !ctx.IndependentWitness(p, ds) {
			continue
		}
		checked++
		// Verify some member is pairwise-independent of all ds under the
		// exact set semantics.
		found := false
		for _, c := range all {
			inside := true
			for i, n := range p.Nodes {
				ok := false
				for _, s := range n.Sources {
					if c.Nodes[i].Source() == s {
						ok = true
						break
					}
				}
				if !ok {
					inside = false
					break
				}
			}
			if !inside {
				continue
			}
			good := true
			for _, dp := range ds {
				// Exact independence: answer sets disjoint.
				a := answerSet(d, c)
				b := answerSet(d, dp)
				if !a.Disjoint(b) {
					good = false
					break
				}
			}
			if good {
				found = true
				break
			}
		}
		if !found {
			t.Fatalf("witness claimed for %s vs %v but no member is independent", p.Key(), ds)
		}
	}
	if checked == 0 {
		t.Skip("no witnesses found to check (overlap too high for this seed)")
	}
}

func answerSet(d *workload.Domain, p *planspace.Plan) *bitset.Set {
	s := d.Coverage.Set(p.Nodes[0].Source()).Clone()
	for _, n := range p.Nodes[1:] {
		s.IntersectWith(d.Coverage.Set(n.Source()))
	}
	return s
}
