package abstraction

import (
	"math/rand"
	"testing"
	"testing/quick"

	"qporder/internal/lav"
)

func catalogWithTuples(tuples ...float64) *lav.Catalog {
	cat := lav.NewCatalog()
	for i, n := range tuples {
		cat.MustAdd(string(rune('a'+i)), nil, lav.Stats{Tuples: n})
	}
	return cat
}

func TestByTuplesOrdersSimilarAdjacent(t *testing.T) {
	cat := catalogWithTuples(500, 10, 480, 20)
	h := ByTuples(cat)
	got := h.Order(0, []lav.SourceID{0, 1, 2, 3})
	want := []lav.SourceID{1, 3, 2, 0} // 10, 20, 480, 500
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Order = %v, want %v", got, want)
		}
	}
}

func TestBuildHierarchyStructure(t *testing.T) {
	cat := catalogWithTuples(1, 2, 3, 4, 5)
	roots := Build([][]lav.SourceID{{0, 1, 2, 3, 4}}, ByTuples(cat))
	if len(roots) != 1 {
		t.Fatalf("got %d roots", len(roots))
	}
	root := roots[0]
	if root.Size() != 5 || root.IsLeaf() {
		t.Fatalf("root = %v", root)
	}
	// Walk: every internal node has exactly 2 children whose member sets
	// partition the parent's.
	var walk func(n *Node)
	leaves := 0
	walk = func(n *Node) {
		if n.IsLeaf() {
			leaves++
			if len(n.Sources) != 1 {
				t.Fatalf("leaf with %d members", len(n.Sources))
			}
			return
		}
		if len(n.Children) != 2 {
			t.Fatalf("internal node with %d children", len(n.Children))
		}
		total := 0
		seen := map[lav.SourceID]bool{}
		for _, ch := range n.Children {
			total += ch.Size()
			for _, s := range ch.Sources {
				if seen[s] {
					t.Fatalf("member %d in both children", s)
				}
				seen[s] = true
			}
			walk(ch)
		}
		if total != n.Size() {
			t.Fatalf("children sizes %d != parent %d", total, n.Size())
		}
		for _, s := range n.Sources {
			if !seen[s] {
				t.Fatalf("member %d lost in children", s)
			}
		}
	}
	walk(root)
	if leaves != 5 {
		t.Errorf("hierarchy has %d leaves, want 5", leaves)
	}
}

func TestBuildBalancedDepth(t *testing.T) {
	cat := lav.NewCatalog()
	var bucket []lav.SourceID
	for i := 0; i < 64; i++ {
		s := cat.MustAdd(string(rune('a'+i%26))+string(rune('0'+i/26)), nil, lav.Stats{Tuples: float64(i + 1)})
		bucket = append(bucket, s.ID)
	}
	root := Build([][]lav.SourceID{bucket}, ByTuples(cat))[0]
	var depth func(n *Node) int
	depth = func(n *Node) int {
		if n.IsLeaf() {
			return 1
		}
		d := 0
		for _, ch := range n.Children {
			if cd := depth(ch); cd > d {
				d = cd
			}
		}
		return d + 1
	}
	if d := depth(root); d != 7 { // log2(64)+1
		t.Errorf("depth = %d, want 7", d)
	}
}

func TestHeuristicDeterminism(t *testing.T) {
	cfg := &quick.Config{MaxCount: 50}
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		cat := lav.NewCatalog()
		var bucket []lav.SourceID
		n := 2 + rng.Intn(20)
		for i := 0; i < n; i++ {
			s := cat.MustAdd(string(rune('a'+i%26))+string(rune('0'+i/26)), nil,
				lav.Stats{Tuples: float64(1 + rng.Intn(5))}) // many ties
			bucket = append(bucket, s.ID)
		}
		h := ByTuples(cat)
		a := h.Order(0, bucket)
		b := h.Order(0, bucket)
		for i := range a {
			if a[i] != b[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, cfg); err != nil {
		t.Error(err)
	}
}

func TestBuildLeaves(t *testing.T) {
	leaves := BuildLeaves([][]lav.SourceID{{3, 1}, {2}})
	if len(leaves) != 2 || len(leaves[0]) != 2 || len(leaves[1]) != 1 {
		t.Fatalf("BuildLeaves shape wrong: %v", leaves)
	}
	if leaves[0][0].Source() != 3 || leaves[0][0].Bucket != 0 {
		t.Errorf("leaf = %v", leaves[0][0])
	}
}

func TestNodeString(t *testing.T) {
	leaf := &Node{Sources: []lav.SourceID{7}}
	if leaf.String() != "V7" {
		t.Errorf("leaf String = %q", leaf.String())
	}
	grp := &Node{Sources: []lav.SourceID{3, 7}, Children: []*Node{leaf, leaf}}
	if grp.String() != "{V3 V7}" {
		t.Errorf("group String = %q", grp.String())
	}
}

func TestSourceOnAbstractNodePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	n := &Node{Sources: []lav.SourceID{1, 2}, Children: []*Node{{}, {}}}
	n.Source()
}

func TestEmptyBucketPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic on empty bucket")
		}
	}()
	Build([][]lav.SourceID{{}}, ByID())
}

func TestNodeKey(t *testing.T) {
	leaf := &Node{Bucket: 2, Sources: []lav.SourceID{7}}
	if got := leaf.Key(); got != "7" {
		t.Errorf("leaf key = %q, want 7", got)
	}
	g := &Node{Bucket: 0, Sources: []lav.SourceID{1, 5, 9},
		Children: []*Node{{}, {}}}
	if got := g.Key(); got != "1,5,9" {
		t.Errorf("group key = %q, want 1,5,9", got)
	}
	// The key is content-addressed: a distinct object with the same
	// members (even in another bucket) shares it.
	g2 := &Node{Bucket: 3, Sources: []lav.SourceID{1, 5, 9},
		Children: []*Node{{}, {}}}
	if g.Key() != g2.Key() {
		t.Error("equal member sets produced different keys")
	}
	// Cached: repeated calls return the same value.
	if g.Key() != "1,5,9" {
		t.Error("cached key changed")
	}
}
