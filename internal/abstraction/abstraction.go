// Package abstraction builds the per-bucket source-abstraction hierarchies
// used by Drips, iDrips, and Streamer (Section 5 of the paper).
//
// An abstract source is a group of concrete sources that are "similar": a
// grouping heuristic orders a bucket so that similar sources are adjacent,
// and a balanced binary tree over that order becomes the hierarchy. The
// root abstracts the whole bucket; refining a node exposes its two
// children; leaves are concrete sources.
package abstraction

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync/atomic"

	"qporder/internal/lav"
)

// Node is an abstract source: a set of concrete member sources within one
// bucket. A leaf has exactly one member and nil Children. Nodes are
// immutable after construction; identity is pointer identity.
type Node struct {
	// Bucket is the subgoal index this node's sources belong to.
	Bucket int
	// Sources lists the member source IDs in ascending order.
	Sources []lav.SourceID
	// Children are the refinement of this node (nil for leaves).
	Children []*Node

	key atomic.Pointer[string] // lazily built canonical key
}

// IsLeaf reports whether the node is a single concrete source.
func (n *Node) IsLeaf() bool { return len(n.Children) == 0 }

// Size returns the number of member sources.
func (n *Node) Size() int { return len(n.Sources) }

// Source returns the single member of a leaf; it panics on abstract nodes.
func (n *Node) Source() lav.SourceID {
	if !n.IsLeaf() {
		panic("abstraction: Source() on abstract node")
	}
	return n.Sources[0]
}

// Min returns the smallest member ID (used for deterministic tie-breaks).
func (n *Node) Min() lav.SourceID { return n.Sources[0] }

// Key returns a canonical content key for the node's member set: "7" for
// the leaf V7, "1,5,9" for a group over sources {1,5,9}. Two nodes with
// the same members share a key even when they are distinct objects —
// iDrips re-abstracts its spaces on every Next, so shared caches keyed by
// pointer identity would never hit across Nexts. Everything memoized
// under a key (answer sets, source statistics) is a function of the
// member set alone, so the bucket index is deliberately excluded. The key
// is built once and cached; concurrent callers may race to build it, but
// they build identical strings, so last-write-wins is benign.
func (n *Node) Key() string {
	if k := n.key.Load(); k != nil {
		return *k
	}
	var b strings.Builder
	for i, s := range n.Sources {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(strconv.Itoa(int(s)))
	}
	k := b.String()
	n.key.Store(&k)
	return k
}

// String renders a leaf as "V7" and a group as "{V3 V7 V9}".
func (n *Node) String() string {
	if n.IsLeaf() {
		return fmt.Sprintf("V%d", n.Sources[0])
	}
	parts := make([]string, len(n.Sources))
	for i, s := range n.Sources {
		parts[i] = fmt.Sprintf("V%d", s)
	}
	return "{" + strings.Join(parts, " ") + "}"
}

// Heuristic orders a bucket's sources so that similar sources become
// adjacent; the hierarchy groups adjacent runs. Implementations must
// return a permutation of the input (the builder verifies length only).
type Heuristic interface {
	// Name identifies the heuristic in experiment output.
	Name() string
	// Order returns the grouping order for the given bucket.
	Order(bucket int, sources []lav.SourceID) []lav.SourceID
}

// keyHeuristic orders sources by a numeric similarity key.
type keyHeuristic struct {
	name string
	key  func(bucket int, id lav.SourceID) float64
}

func (h keyHeuristic) Name() string { return h.name }

func (h keyHeuristic) Order(bucket int, sources []lav.SourceID) []lav.SourceID {
	out := make([]lav.SourceID, len(sources))
	copy(out, sources)
	sort.SliceStable(out, func(i, j int) bool {
		ki, kj := h.key(bucket, out[i]), h.key(bucket, out[j])
		if ki != kj {
			return ki < kj
		}
		return out[i] < out[j] // deterministic tie-break
	})
	return out
}

// ByKey returns a heuristic that sorts sources by an arbitrary numeric
// similarity key (smaller keys first, adjacent keys grouped together).
func ByKey(name string, key func(bucket int, id lav.SourceID) float64) Heuristic {
	return keyHeuristic{name: name, key: key}
}

// ByTuples is the paper's heuristic: group sources with similar expected
// numbers of output tuples (n_i).
func ByTuples(cat *lav.Catalog) Heuristic {
	return ByKey("by-tuples", func(_ int, id lav.SourceID) float64 {
		return cat.Source(id).Stats.Tuples
	})
}

// ByAccessCost groups sources by their standalone expected access cost
// h/(1-f) + α·n, a natural heuristic for the cost measures.
func ByAccessCost(cat *lav.Catalog) Heuristic {
	return ByKey("by-access-cost", func(_ int, id lav.SourceID) float64 {
		st := cat.Source(id).Stats
		return st.Overhead/(1-st.FailureProb) + st.TransmitCost*st.Tuples
	})
}

// ByID is the null heuristic (registration order); useful as an ablation
// baseline for how much the grouping heuristic matters.
func ByID() Heuristic {
	return ByKey("by-id", func(_ int, id lav.SourceID) float64 { return float64(id) })
}

// Build constructs one hierarchy root per bucket. Each bucket must be
// non-empty. The heuristic orders each bucket; the hierarchy is a balanced
// binary tree over that order, so refining a node splits its members into
// two similar halves.
func Build(buckets [][]lav.SourceID, h Heuristic) []*Node {
	roots := make([]*Node, len(buckets))
	for b, srcs := range buckets {
		if len(srcs) == 0 {
			panic(fmt.Sprintf("abstraction: empty bucket %d", b))
		}
		ordered := h.Order(b, srcs)
		if len(ordered) != len(srcs) {
			panic(fmt.Sprintf("abstraction: heuristic %s returned %d sources for bucket of %d",
				h.Name(), len(ordered), len(srcs)))
		}
		roots[b] = build(b, ordered)
	}
	return roots
}

// build recursively constructs a balanced tree over ordered sources.
func build(bucket int, ordered []lav.SourceID) *Node {
	if len(ordered) == 1 {
		return &Node{Bucket: bucket, Sources: []lav.SourceID{ordered[0]}}
	}
	mid := len(ordered) / 2
	left := build(bucket, ordered[:mid])
	right := build(bucket, ordered[mid:])
	members := make([]lav.SourceID, len(ordered))
	copy(members, ordered)
	sort.Slice(members, func(i, j int) bool { return members[i] < members[j] })
	return &Node{Bucket: bucket, Sources: members, Children: []*Node{left, right}}
}

// BuildLeaves returns, for each bucket, leaf nodes for every source with
// no abstraction above them. Algorithms that never abstract (PI,
// Exhaustive, Greedy) share these leaves so utility caches keyed by node
// identity stay effective.
func BuildLeaves(buckets [][]lav.SourceID) [][]*Node {
	out := make([][]*Node, len(buckets))
	for b, srcs := range buckets {
		leaves := make([]*Node, len(srcs))
		for i, s := range srcs {
			leaves[i] = &Node{Bucket: b, Sources: []lav.SourceID{s}}
		}
		out[b] = leaves
	}
	return out
}
