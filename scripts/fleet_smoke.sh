#!/bin/sh
# fleet_smoke.sh — end-to-end smoke test of the distributed serving tier:
#   1. boot three race-enabled qpserved shards on random ports and a
#      qprouter front end over them,
#   2. scatter-gather parity: a scatter session through the router must
#      stream a plan order byte-identical to single-process qporder for
#      the same query, seed, algorithm (pi), and measure,
#   3. affinity: a shuffled burst of one query routes every session to
#      the same shard (canonical-key ring), zero errors, warm cache,
#   4. traceparent forwarding: the fleet hop joins the caller's trace,
#   5. metrics federation: the router's openmetrics view folds in every
#      shard under a shard label, grammar-terminated by # EOF; the shard
#      SLO monitor answers /debug/slo,
#   6. kill a shard mid-burst: SIGTERM the ring owner while paced load
#      runs; zero client-visible errors, sessions reroute to the next
#      ring node, fleet.shards_up settles at 2,
#   7. scatter parity again on the 2-shard fleet — the merged order is
#      invariant to the shard count,
#   8. SIGTERM the router and surviving shards; all must drain cleanly,
#   9. trace stitching: qptrace over the router's unified export shows
#      the scatter session as ONE trace joining router and shard spans
#      across processes, with a cross-process critical path.
# Used by `make fleet-smoke` and the fleet-smoke CI job.
set -eu

GO=${GO:-go}
WORKDIR=$(mktemp -d)

# Track every daemon we start; cleanup kills and reaps them all BEFORE
# removing the workdir, on every exit path (success, failure, signal).
# On failure the logs go to SMOKE_ARTIFACT_DIR if set (CI uploads them).
PIDS=""
cleanup() {
    status=$?
    if [ "$status" -ne 0 ] && [ -n "${SMOKE_ARTIFACT_DIR:-}" ]; then
        mkdir -p "$SMOKE_ARTIFACT_DIR"
        cp "$WORKDIR"/*.log "$WORKDIR"/*.txt "$WORKDIR"/*.json "$WORKDIR"/*.ndjson "$SMOKE_ARTIFACT_DIR"/ 2>/dev/null || true
    fi
    for pid in $PIDS; do
        kill -TERM "$pid" 2>/dev/null || true
    done
    for pid in $PIDS; do
        for _ in $(seq 1 50); do
            kill -0 "$pid" 2>/dev/null || break
            sleep 0.1
        done
        kill -KILL "$pid" 2>/dev/null || true
        wait "$pid" 2>/dev/null || true
    done
    rm -rf "$WORKDIR"
    exit "$status"
}
trap cleanup EXIT INT TERM

# FAIL_INJECT exercises the cleanup path: exit mid-run with daemons up;
# the driver asserts they are gone afterwards (pids in $FAIL_INJECT).
FAIL_INJECT=${FAIL_INJECT:-}

QUERY='Q(M, R) :- play-in(A, M), review-of(R, M)'
SEED=1
MEASURE=chain
K=6

echo "fleet-smoke: building race-enabled binaries"
$GO build -race -o "$WORKDIR/qpserved" ./cmd/qpserved
$GO build -race -o "$WORKDIR/qprouter" ./cmd/qprouter
$GO build -race -o "$WORKDIR/qpload" ./cmd/qpload
$GO build -o "$WORKDIR/qporder" ./cmd/qporder
$GO build -o "$WORKDIR/qptrace" ./cmd/qptrace
$GO run ./cmd/qpgen -preset movie > "$WORKDIR/movie.qp"

# boot_daemon <binary> <logfile> <args...>: starts it, scrapes
# "listening on" for the port, echoes "<pid> <url>". It runs inside
# command substitution — a subshell — so it CANNOT mutate PIDS itself;
# every caller must append the echoed pid to PIDS in the parent shell.
boot_daemon() {
    bin=$1; log=$2; shift 2
    "$WORKDIR/$bin" "$@" > "$WORKDIR/$log" 2>&1 &
    pid=$!
    port=""
    for _ in $(seq 1 100); do
        port=$(sed -n 's/^listening on .*:\([0-9][0-9]*\)$/\1/p' "$WORKDIR/$log")
        [ -n "$port" ] && break
        kill -0 "$pid" 2>/dev/null || { echo "fleet-smoke: $bin died:" >&2; cat "$WORKDIR/$log" >&2; return 1; }
        sleep 0.1
    done
    [ -n "$port" ] || { echo "fleet-smoke: no port in $log" >&2; return 1; }
    echo "$pid http://127.0.0.1:$port"
}

# scrape_counter <url> <name>: integer value from /metrics?format=json.
# The JSON is pretty-printed one instrument per line; the trailing comma
# is absent on the last entry of a block, so it is optional here.
scrape_counter() {
    curl -fsS "$1/metrics?format=json" \
        | sed -n "s/^ *\"$(echo "$2" | sed 's/\./\\./g')\": *\([0-9][0-9]*\)\(\.[0-9]*\)\{0,1\},\{0,1\}$/\1/p"
}

echo "fleet-smoke: booting three shards"
set -- $(boot_daemon qpserved shard1.log -f "$WORKDIR/movie.qp" -addr 127.0.0.1:0 -seed "$SEED" -slo-ttfa 2s -slo-full 5s)
S1_PID=$1; S1_URL=$2; PIDS="$PIDS $S1_PID"
set -- $(boot_daemon qpserved shard2.log -f "$WORKDIR/movie.qp" -addr 127.0.0.1:0 -seed "$SEED" -slo-ttfa 2s -slo-full 5s)
S2_PID=$1; S2_URL=$2; PIDS="$PIDS $S2_PID"
set -- $(boot_daemon qpserved shard3.log -f "$WORKDIR/movie.qp" -addr 127.0.0.1:0 -seed "$SEED" -slo-ttfa 2s -slo-full 5s)
S3_PID=$1; S3_URL=$2; PIDS="$PIDS $S3_PID"
echo "fleet-smoke: shards up at $S1_URL $S2_URL $S3_URL"

echo "fleet-smoke: booting the router"
# No router SLO: with tail sampling off every session exports, so the
# stitching check at the end is deterministic.
set -- $(boot_daemon qprouter router.log -shards "$S1_URL,$S2_URL,$S3_URL" \
    -addr 127.0.0.1:0 -health-interval 500ms -backoff 10ms -k "$K" \
    -trace-out "$WORKDIR/fleet_traces.ndjson")
RT_PID=$1; RT_URL=$2; PIDS="$PIDS $RT_PID"
curl -fsS "$RT_URL/healthz" > /dev/null || { echo "fleet-smoke: router healthz failed"; exit 1; }
echo "fleet-smoke: router up at $RT_URL"

if [ -n "$FAIL_INJECT" ]; then
    echo "fleet-smoke: FAIL_INJECT set, exiting mid-run with the fleet up"
    echo "$PIDS" > "$FAIL_INJECT"
    exit 42
fi

echo "fleet-smoke: scatter-gather parity against single-process qporder (3 shards)"
"$WORKDIR/qpload" -url "$RT_URL" -q "$QUERY" -print-plans -scatter \
    -algo pi -measure "$MEASURE" -k "$K" > "$WORKDIR/scatter_plans.txt"
"$WORKDIR/qporder" -f "$WORKDIR/movie.qp" -q "$QUERY" -plans-only \
    -algo pi -measure "$MEASURE" -k "$K" -seed "$SEED" > "$WORKDIR/direct_plans.txt"
if ! diff -u "$WORKDIR/direct_plans.txt" "$WORKDIR/scatter_plans.txt"; then
    echo "fleet-smoke: FAIL: 3-shard scatter order diverges from qporder"
    exit 1
fi
[ -s "$WORKDIR/scatter_plans.txt" ] || { echo "fleet-smoke: FAIL: no plans gathered"; exit 1; }
echo "fleet-smoke: scatter order is byte-identical ($(wc -l < "$WORKDIR/scatter_plans.txt" | tr -d ' ') plans)"

echo "fleet-smoke: shuffled affinity burst (32 sessions, 4 workers)"
"$WORKDIR/qpload" -url "$RT_URL" -q "$QUERY" -n 32 -c 4 -k "$K" -shuffle \
    -measure "$MEASURE" -out "$WORKDIR/affinity_report.json"

# All 32 canonical-equivalent sessions must have landed on ONE shard
# (plus each shard served one scatter slice above): exactly one shard's
# session cache saw hits.
OWNER_URL=""; OWNER_PID=""; HOT=0
for pair in "$S1_PID $S1_URL" "$S2_PID $S2_URL" "$S3_PID $S3_URL"; do
    set -- $pair
    hits=$(scrape_counter "$2" "server.cache_hits"); hits=${hits:-0}
    if [ "$hits" -gt 0 ]; then
        HOT=$((HOT + 1)); OWNER_PID=$1; OWNER_URL=$2
    fi
done
[ "$HOT" -eq 1 ] || { echo "fleet-smoke: FAIL: $HOT shards saw cache hits, want exactly 1 (affinity broken)"; exit 1; }
echo "fleet-smoke: affinity holds — all sessions on $OWNER_URL"

echo "fleet-smoke: traceparent forwarding through the fleet hop"
TP='00-0af7651916cd43dd8448eb211c80319c-b7ad6b7169203331-01'
TRACE_ID='0af7651916cd43dd8448eb211c80319c'
curl -fsS -D "$WORKDIR/tp_headers.txt" "$RT_URL/v1/query" \
    -H "traceparent: $TP" \
    -d "{\"query\":\"$QUERY\",\"k\":$K,\"measure\":\"$MEASURE\"}" > /dev/null
grep -iq "^traceparent: 00-$TRACE_ID-" "$WORKDIR/tp_headers.txt" || {
    echo "fleet-smoke: FAIL: fleet hop did not join the caller's trace:"
    cat "$WORKDIR/tp_headers.txt"
    exit 1
}
echo "fleet-smoke: shard joined trace $TRACE_ID through the router"

echo "fleet-smoke: federated metrics scrape across the 3-shard fleet"
curl -fsS -D "$WORKDIR/fed_headers.txt" \
    "$RT_URL/metrics?format=openmetrics" > "$WORKDIR/federated.txt"
grep -iq '^content-type: application/openmetrics-text' "$WORKDIR/fed_headers.txt" || {
    echo "fleet-smoke: FAIL: federated scrape has the wrong Content-Type:"
    cat "$WORKDIR/fed_headers.txt"
    exit 1
}
[ "$(tail -n 1 "$WORKDIR/federated.txt")" = "# EOF" ] || {
    echo "fleet-smoke: FAIL: federated exposition not terminated by # EOF"
    exit 1
}
for idx in 0 1 2; do
    grep -q "{shard=\"$idx\"" "$WORKDIR/federated.txt" || {
        echo "fleet-smoke: FAIL: shard $idx missing from the federated exposition"
        exit 1
    }
done
grep -q '^fleet_sessions_scatter_total ' "$WORKDIR/federated.txt" || {
    echo "fleet-smoke: FAIL: router's own families missing from the merge"
    exit 1
}
echo "fleet-smoke: federation merges 3 shards plus the router's own registry"

echo "fleet-smoke: shard SLO monitor surface"
curl -fsS "$S2_URL/debug/slo" > "$WORKDIR/slo.txt"
grep -q 'slo objectives:' "$WORKDIR/slo.txt" || {
    echo "fleet-smoke: FAIL: shard /debug/slo did not render objectives:"
    cat "$WORKDIR/slo.txt"
    exit 1
}
curl -fsS "$RT_URL/debug/slo" | grep -q 'disabled' || {
    echo "fleet-smoke: FAIL: router without objectives should report slo disabled"
    exit 1
}
echo "fleet-smoke: /debug/slo live on shards, disabled on the router"

echo "fleet-smoke: SIGTERM the owner shard ($OWNER_URL) under paced load"
"$WORKDIR/qpload" -url "$RT_URL" -q "$QUERY" -n 60 -c 4 -qps 50 -k "$K" \
    -measure "$MEASURE" > "$WORKDIR/kill_burst.txt" 2>&1 &
BURST_PID=$!
sleep 0.3
kill -TERM "$OWNER_PID"
if ! wait "$BURST_PID"; then
    echo "fleet-smoke: FAIL: client-visible errors while a shard died:"
    cat "$WORKDIR/kill_burst.txt"
    exit 1
fi
echo "fleet-smoke: 60 sessions, zero client-visible errors across the kill"

# The dead shard must leave the ring: fleet.shards_up settles at 2.
UP=""
for _ in $(seq 1 50); do
    UP=$(scrape_counter "$RT_URL" "fleet.shards_up"); UP=${UP:-}
    [ "$UP" = "2" ] && break
    sleep 0.2
done
[ "$UP" = "2" ] || { echo "fleet-smoke: FAIL: fleet.shards_up is '$UP', want 2"; exit 1; }
REROUTED=$(scrape_counter "$RT_URL" "fleet.sessions_rerouted"); REROUTED=${REROUTED:-0}
[ "$REROUTED" -ge 1 ] || { echo "fleet-smoke: FAIL: no sessions rerouted across the kill"; exit 1; }
echo "fleet-smoke: shard left the ring, $REROUTED sessions rerouted"

# Reap the killed shard and drop it from the cleanup list.
wait "$OWNER_PID" 2>/dev/null || true
NEWPIDS=""
for pid in $PIDS; do
    [ "$pid" = "$OWNER_PID" ] || NEWPIDS="$NEWPIDS $pid"
done
PIDS=$NEWPIDS

echo "fleet-smoke: scatter-gather parity on the surviving 2-shard fleet"
"$WORKDIR/qpload" -url "$RT_URL" -q "$QUERY" -print-plans -scatter \
    -algo pi -measure "$MEASURE" -k "$K" > "$WORKDIR/scatter2_plans.txt"
if ! diff -u "$WORKDIR/direct_plans.txt" "$WORKDIR/scatter2_plans.txt"; then
    echo "fleet-smoke: FAIL: 2-shard scatter order diverges — merge is not invariant to fleet size"
    exit 1
fi
echo "fleet-smoke: merged order is invariant to the shard count"

echo "fleet-smoke: draining the router and surviving shards"
for pid in $PIDS; do
    kill -TERM "$pid" 2>/dev/null || true
done
for pid in $PIDS; do
    DRAINED=1
    for _ in $(seq 1 100); do
        if ! kill -0 "$pid" 2>/dev/null; then DRAINED=0; break; fi
        sleep 0.1
    done
    [ "$DRAINED" -eq 0 ] || { echo "fleet-smoke: FAIL: pid $pid did not exit after SIGTERM"; exit 1; }
    wait "$pid" 2>/dev/null || true
done
PIDS=""
for log in router.log shard1.log shard2.log shard3.log; do
    if grep -iq "DATA RACE" "$WORKDIR/$log"; then
        echo "fleet-smoke: FAIL: race detected in $log:"
        cat "$WORKDIR/$log"
        exit 1
    fi
done
grep -q "drained cleanly" "$WORKDIR/router.log" || {
    echo "fleet-smoke: FAIL: no clean-drain marker in router log:"
    cat "$WORKDIR/router.log"
    exit 1
}

echo "fleet-smoke: stitching the unified trace export"
[ -s "$WORKDIR/fleet_traces.ndjson" ] || {
    echo "fleet-smoke: FAIL: router exported no traces"
    exit 1
}
# -top high enough that every session of the run is listed; the
# procs=4 scatter session must not fall off a truncated list.
"$WORKDIR/qptrace" -top 500 "$WORKDIR/fleet_traces.ndjson" > "$WORKDIR/stitch_report.txt"
grep -q 'stitched fleet traces' "$WORKDIR/stitch_report.txt" || {
    echo "fleet-smoke: FAIL: report has no stitched section:"
    cat "$WORKDIR/stitch_report.txt"
    exit 1
}
# The 3-shard scatter session must appear as ONE trace joining the
# router hop and all three shard hops, with a critical path that
# crosses the process boundary into a shard slice.
grep -q 'procs=4' "$WORKDIR/stitch_report.txt" || {
    echo "fleet-smoke: FAIL: no 4-process (router + 3 shards) stitched trace:"
    cat "$WORKDIR/stitch_report.txt"
    exit 1
}
grep -q 'router /v1/query' "$WORKDIR/stitch_report.txt" || {
    echo "fleet-smoke: FAIL: router hop missing from the stitched report"
    exit 1
}
grep -q 'critical path: .*router/slice' "$WORKDIR/stitch_report.txt" || {
    echo "fleet-smoke: FAIL: critical path does not cross into a shard slice:"
    cat "$WORKDIR/stitch_report.txt"
    exit 1
}
echo "fleet-smoke: scatter session stitched across router + 3 shards"
echo "fleet-smoke: PASS"
