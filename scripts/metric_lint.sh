#!/bin/sh
# metric_lint.sh — lint instrument-name string literals handed to the
# obs registry (Counter/Gauge/Histogram call sites plus the Metric*
# constants in internal/obs/runtime.go). Names must be lowercase dotted
# identifiers from [a-z0-9._] with a leading letter and no empty
# segments, so that OpenMetrics sanitization (dot -> underscore, see
# internal/obs/openmetrics.go) is lossless and collision-free by
# construction. Used by `make lint-metrics` (part of `make check`).
set -eu
cd "$(dirname "$0")/.."

names=$({
    grep -rhoE '\.(Counter|Gauge|Histogram)\("[^"]*"\)' \
        --include='*.go' --exclude='*_test.go' internal cmd
    grep -hoE 'Metric[A-Za-z0-9]+[[:space:]]*=[[:space:]]*"[^"]*"' \
        internal/obs/runtime.go
    # Sprintf-built names (per-shard fleet.shard%d.* instruments): lint
    # the format string with %d stood in by a digit, which is exactly
    # what the registry receives at runtime.
    grep -rhoE '\.(Counter|Gauge|Histogram)\(fmt\.Sprintf\("[^"]*"' \
        --include='*.go' --exclude='*_test.go' internal cmd |
        sed 's/%d/0/g'
} | sed 's/.*"\([^"]*\)".*/\1/' | sort -u)

[ -n "$names" ] || {
    echo "metric-lint: extracted no instrument names; the extraction pattern broke" >&2
    exit 1
}

fail=0
count=0
for n in $names; do
    count=$((count + 1))
    case $n in
    *[!a-z0-9._]* | [!a-z]* | *. | *..*)
        echo "metric-lint: bad instrument name: '$n'" >&2
        echo "  want lowercase [a-z0-9._], leading letter, no empty segments" >&2
        fail=1
        ;;
    esac
done

[ "$fail" -eq 0 ] || exit 1
echo "metric-lint: OK ($count instrument names)"
