#!/bin/sh
# serve_smoke.sh — end-to-end smoke test of the serving subsystem:
#   1. boot qpserved (race-enabled build) on a random port over the
#      movie domain,
#   2. verify the streamed plan order is byte-identical to qporder's
#      for the same query, seed, algorithm, and measure,
#   3. exercise the tracing surface: traceparent round-trip, the explain
#      event, the /debug/requests flight recorder, and the -trace-out
#      NDJSON export analyzed by qptrace (zero parse errors required),
#   4. replay a concurrent shuffled burst through qpload (zero errors
#      required) and check the session cache saw hits,
#   5. scrape the OpenMetrics exposition (/metrics?format=openmetrics)
#      and the estimator-calibration surface (/debug/calibration, text
#      and JSON), failing on malformed output; the daemon also exports
#      calibration records into the same NDJSON file as its traces
#      (-calib-out = -trace-out), so step 3's qptrace run doubles as the
#      mixed-stream ingest check,
#   6. SIGTERM the daemon and require a clean drain.
# Used by `make serve-smoke` and the serve-smoke CI job.
set -eu

GO=${GO:-go}
WORKDIR=$(mktemp -d)

# cleanup runs on every exit path — success, failure, or interrupt. The
# daemon is killed (TERM, then KILL if it lingers) and reaped BEFORE the
# workdir is removed: deleting the logs first would race a daemon still
# writing to them, and an early-exit would leak the background process.
# On failure, the logs are preserved in SMOKE_ARTIFACT_DIR if set (CI
# uploads them as workflow artifacts).
cleanup() {
    status=$?
    if [ "$status" -ne 0 ] && [ -n "${SMOKE_ARTIFACT_DIR:-}" ]; then
        mkdir -p "$SMOKE_ARTIFACT_DIR"
        cp "$WORKDIR"/*.log "$WORKDIR"/*.json "$WORKDIR"/*.txt "$SMOKE_ARTIFACT_DIR"/ 2>/dev/null || true
    fi
    if [ -n "${SRV_PID:-}" ]; then
        kill -TERM "$SRV_PID" 2>/dev/null || true
        for _ in $(seq 1 50); do
            kill -0 "$SRV_PID" 2>/dev/null || break
            sleep 0.1
        done
        kill -KILL "$SRV_PID" 2>/dev/null || true
        wait "$SRV_PID" 2>/dev/null || true
    fi
    rm -rf "$WORKDIR"
    exit "$status"
}
trap cleanup EXIT INT TERM

# FAIL_INJECT=1 exercises the cleanup path itself: exit mid-run with the
# daemon still up; the driver then asserts the process is gone.
FAIL_INJECT=${FAIL_INJECT:-}

QUERY='Q(M, R) :- play-in(A, M), review-of(R, M)'
SEED=1
ALGO=streamer
MEASURE=chain
K=6

echo "serve-smoke: building race-enabled binaries"
$GO build -race -o "$WORKDIR/qpserved" ./cmd/qpserved
$GO build -race -o "$WORKDIR/qpload" ./cmd/qpload
$GO build -o "$WORKDIR/qporder" ./cmd/qporder
$GO build -o "$WORKDIR/qptrace" ./cmd/qptrace
$GO run ./cmd/qpgen -preset movie > "$WORKDIR/movie.qp"

echo "serve-smoke: booting qpserved on a random port"
"$WORKDIR/qpserved" -f "$WORKDIR/movie.qp" -addr 127.0.0.1:0 -seed "$SEED" \
    -trace-out "$WORKDIR/traces.ndjson" -calib-out "$WORKDIR/traces.ndjson" \
    > "$WORKDIR/served.log" 2>&1 &
SRV_PID=$!

PORT=""
for _ in $(seq 1 50); do
    PORT=$(sed -n 's/^listening on .*:\([0-9][0-9]*\)$/\1/p' "$WORKDIR/served.log")
    [ -n "$PORT" ] && break
    kill -0 "$SRV_PID" 2>/dev/null || { echo "serve-smoke: daemon died:"; cat "$WORKDIR/served.log"; exit 1; }
    sleep 0.2
done
[ -n "$PORT" ] || { echo "serve-smoke: no port in daemon log"; cat "$WORKDIR/served.log"; exit 1; }
URL="http://127.0.0.1:$PORT"
echo "serve-smoke: daemon is up at $URL"

curl -fsS "$URL/healthz" > /dev/null || { echo "serve-smoke: healthz failed"; exit 1; }

if [ -n "$FAIL_INJECT" ]; then
    echo "serve-smoke: FAIL_INJECT set, exiting mid-run with the daemon up (pid $SRV_PID)"
    echo "$SRV_PID" > "${FAIL_INJECT}"
    exit 42
fi

echo "serve-smoke: checking served plan order against qporder"
"$WORKDIR/qpload" -url "$URL" -q "$QUERY" -print-plans \
    -algo "$ALGO" -measure "$MEASURE" -k "$K" > "$WORKDIR/served_plans.txt"
"$WORKDIR/qporder" -f "$WORKDIR/movie.qp" -q "$QUERY" -plans-only \
    -algo "$ALGO" -measure "$MEASURE" -k "$K" -seed "$SEED" > "$WORKDIR/direct_plans.txt"
if ! diff -u "$WORKDIR/direct_plans.txt" "$WORKDIR/served_plans.txt"; then
    echo "serve-smoke: FAIL: served plan order diverges from qporder"
    exit 1
fi
[ -s "$WORKDIR/served_plans.txt" ] || { echo "serve-smoke: FAIL: no plans streamed"; exit 1; }
echo "serve-smoke: plan order is byte-identical ($(wc -l < "$WORKDIR/served_plans.txt" | tr -d ' ') plans)"

echo "serve-smoke: checking traceparent round-trip and the explain event"
TP='00-0af7651916cd43dd8448eb211c80319c-b7ad6b7169203331-01'
TRACE_ID='0af7651916cd43dd8448eb211c80319c'
curl -fsS -D "$WORKDIR/explain_headers.txt" "$URL/v1/query" \
    -H "traceparent: $TP" \
    -d "{\"query\":\"$QUERY\",\"k\":$K,\"algorithm\":\"$ALGO\",\"measure\":\"$MEASURE\",\"explain\":true}" \
    > "$WORKDIR/explain_stream.ndjson"
grep -iq "^traceparent: 00-$TRACE_ID-" "$WORKDIR/explain_headers.txt" || {
    echo "serve-smoke: FAIL: response did not join the caller's trace:"
    cat "$WORKDIR/explain_headers.txt"
    exit 1
}
grep -q "\"event\":\"explain\"" "$WORKDIR/explain_stream.ndjson" || {
    echo "serve-smoke: FAIL: no explain event in the stream:"
    cat "$WORKDIR/explain_stream.ndjson"
    exit 1
}
grep -q "\"dom_won\"" "$WORKDIR/explain_stream.ndjson" || {
    echo "serve-smoke: FAIL: explain event carries no provenance:"
    cat "$WORKDIR/explain_stream.ndjson"
    exit 1
}
echo "serve-smoke: explain event present, trace ID joined"

echo "serve-smoke: checking the /debug/requests flight recorder"
curl -fsS "$URL/debug/requests?format=json" > "$WORKDIR/flight.json"
grep -q "$TRACE_ID" "$WORKDIR/flight.json" || {
    echo "serve-smoke: FAIL: flight recorder does not retain $TRACE_ID"
    exit 1
}
curl -fsS "$URL/debug/requests?trace=$TRACE_ID" > "$WORKDIR/one_trace.json"
grep -q "\"trace_id\": \"$TRACE_ID\"" "$WORKDIR/one_trace.json" || {
    echo "serve-smoke: FAIL: single-trace lookup failed for $TRACE_ID"
    exit 1
}
echo "serve-smoke: flight recorder retains the request"

echo "serve-smoke: analyzing the trace export with qptrace"
[ -s "$WORKDIR/traces.ndjson" ] || { echo "serve-smoke: FAIL: -trace-out wrote nothing"; exit 1; }
"$WORKDIR/qptrace" "$WORKDIR/traces.ndjson" > "$WORKDIR/qptrace.txt" || {
    echo "serve-smoke: FAIL: qptrace rejected the daemon's trace export:"
    cat "$WORKDIR/traces.ndjson"
    exit 1
}
grep -q "$TRACE_ID" "$WORKDIR/qptrace.txt" || {
    echo "serve-smoke: FAIL: qptrace report is missing $TRACE_ID:"
    cat "$WORKDIR/qptrace.txt"
    exit 1
}
grep -q "calibration records ingested" "$WORKDIR/qptrace.txt" || {
    echo "serve-smoke: FAIL: qptrace report is missing the calibration section:"
    cat "$WORKDIR/qptrace.txt"
    exit 1
}
echo "serve-smoke: qptrace ingested $(wc -l < "$WORKDIR/traces.ndjson" | tr -d ' ') mixed trace+calibration lines"

echo "serve-smoke: checking qporder -explain"
"$WORKDIR/qporder" -f "$WORKDIR/movie.qp" -q "$QUERY" \
    -algo "$ALGO" -measure "$MEASURE" -k "$K" -seed "$SEED" -explain \
    | grep -q "dom_won" || { echo "serve-smoke: FAIL: qporder -explain printed no provenance"; exit 1; }
echo "serve-smoke: qporder -explain prints provenance"

echo "serve-smoke: concurrent shuffled burst (48 sessions, 8 workers)"
"$WORKDIR/qpload" -url "$URL" -q "$QUERY" -n 48 -c 8 -k "$K" -shuffle \
    -algo "$ALGO" -measure "$MEASURE" -out "$WORKDIR/load_report.json"
grep -q '"schema_version": 1' "$WORKDIR/load_report.json" || {
    echo "serve-smoke: FAIL: qpload -out report lacks schema_version:"
    cat "$WORKDIR/load_report.json"
    exit 1
}

HITS=$(curl -fsS "$URL/metrics?format=json" \
    | sed -n 's/.*"server\.cache_hits": *\([0-9][0-9]*\).*/\1/p')
[ -n "$HITS" ] && [ "$HITS" -gt 0 ] || { echo "serve-smoke: FAIL: no session-cache hits (got '${HITS:-none}')"; exit 1; }
echo "serve-smoke: session cache hits: $HITS"

echo "serve-smoke: scraping the OpenMetrics exposition"
curl -fsS -D "$WORKDIR/om_headers.txt" "$URL/metrics?format=openmetrics" > "$WORKDIR/metrics.om"
grep -iq "^content-type: application/openmetrics-text" "$WORKDIR/om_headers.txt" || {
    echo "serve-smoke: FAIL: wrong Content-Type for OpenMetrics:"
    cat "$WORKDIR/om_headers.txt"
    exit 1
}
[ "$(tail -n 1 "$WORKDIR/metrics.om")" = "# EOF" ] || {
    echo "serve-smoke: FAIL: OpenMetrics exposition is not terminated by # EOF:"
    tail -n 3 "$WORKDIR/metrics.om"
    exit 1
}
for want in "^# TYPE server_requests counter" "^server_requests_total " \
    "^# TYPE runtime_heap_bytes gauge" "^calib_plan_qerror"; do
    grep -q "$want" "$WORKDIR/metrics.om" || {
        echo "serve-smoke: FAIL: OpenMetrics exposition is missing '$want':"
        cat "$WORKDIR/metrics.om"
        exit 1
    }
done
echo "serve-smoke: OpenMetrics exposition is well-formed ($(wc -l < "$WORKDIR/metrics.om" | tr -d ' ') lines)"

echo "serve-smoke: scraping /debug/calibration"
curl -fsS "$URL/debug/calibration" > "$WORKDIR/calib.txt"
grep -q "per-plan (utility at selection vs execution outcome)" "$WORKDIR/calib.txt" || {
    echo "serve-smoke: FAIL: /debug/calibration has no per-plan accounting:"
    cat "$WORKDIR/calib.txt"
    exit 1
}
curl -fsS "$URL/debug/calibration?format=json" > "$WORKDIR/calib.json"
grep -q '"drift_factor"' "$WORKDIR/calib.json" || {
    echo "serve-smoke: FAIL: /debug/calibration?format=json is malformed:"
    cat "$WORKDIR/calib.json"
    exit 1
}
echo "serve-smoke: calibration surface reports estimate-vs-actual accounting"

echo "serve-smoke: draining via SIGTERM"
kill -TERM "$SRV_PID"
DRAINED=1
for _ in $(seq 1 100); do
    if ! kill -0 "$SRV_PID" 2>/dev/null; then DRAINED=0; break; fi
    sleep 0.2
done
if [ "$DRAINED" -ne 0 ]; then
    echo "serve-smoke: FAIL: daemon did not exit after SIGTERM"
    cat "$WORKDIR/served.log"
    exit 1
fi
wait "$SRV_PID" 2>/dev/null || true
SRV_PID=""
grep -q "drained cleanly" "$WORKDIR/served.log" || {
    echo "serve-smoke: FAIL: no clean-drain marker in daemon log:"
    cat "$WORKDIR/served.log"
    exit 1
}
if grep -iq "DATA RACE" "$WORKDIR/served.log"; then
    echo "serve-smoke: FAIL: race detected in daemon log:"
    cat "$WORKDIR/served.log"
    exit 1
fi
echo "serve-smoke: PASS"
