#!/bin/sh
# store_smoke.sh — end-to-end smoke test of the disk-backed segment
# store (internal/store):
#   1. generate a store directory with `qpgen -store` and require
#      `qpstore verify` to pass (the generator round-trips through the
#      verifier),
#   2. corrupt a single byte of segments.qps — verify must fail; restore
#      and corrupt a single byte of catalog.qpc — verify must fail again;
#      restore and verify must pass,
#   3. boot a race-enabled `qpserved -store` over the clean store and
#      require the streamed plan order to be byte-identical to
#      `qporder -store` reading the same directory,
#   4. run the cold-vs-warm store experiment (`qpbench -exp store`),
#      which exits non-zero on any parity divergence,
#   5. SIGTERM the daemon and require a clean drain.
# Used by `make store-smoke` and the store-smoke CI job.
set -eu

GO=${GO:-go}
WORKDIR=$(mktemp -d)

# cleanup runs on every exit path — success, failure, or interrupt. The
# daemon is killed (TERM, then KILL if it lingers) and reaped BEFORE the
# workdir is removed. On failure, logs are preserved in
# SMOKE_ARTIFACT_DIR if set (CI uploads them as workflow artifacts).
cleanup() {
    status=$?
    if [ "$status" -ne 0 ] && [ -n "${SMOKE_ARTIFACT_DIR:-}" ]; then
        mkdir -p "$SMOKE_ARTIFACT_DIR"
        cp "$WORKDIR"/*.log "$WORKDIR"/*.txt "$SMOKE_ARTIFACT_DIR"/ 2>/dev/null || true
    fi
    if [ -n "${SRV_PID:-}" ]; then
        kill -TERM "$SRV_PID" 2>/dev/null || true
        for _ in $(seq 1 50); do
            kill -0 "$SRV_PID" 2>/dev/null || break
            sleep 0.1
        done
        kill -KILL "$SRV_PID" 2>/dev/null || true
        wait "$SRV_PID" 2>/dev/null || true
    fi
    rm -rf "$WORKDIR"
    exit "$status"
}
trap cleanup EXIT INT TERM

# FAIL_INJECT=1 exercises the cleanup path itself: exit mid-run with the
# daemon still up; the driver then asserts the process is gone.
FAIL_INJECT=${FAIL_INJECT:-}

STORE="$WORKDIR/store"
QUERY='Q(X0, X3) :- rel0(X0, X1), rel1(X1, X2), rel2(X2, X3)'
SEED=7
ALGO=streamer
MEASURE=chain
K=6

echo "store-smoke: building binaries"
$GO build -o "$WORKDIR/qpgen" ./cmd/qpgen
$GO build -o "$WORKDIR/qpstore" ./cmd/qpstore
$GO build -o "$WORKDIR/qporder" ./cmd/qporder
$GO build -o "$WORKDIR/qpbench" ./cmd/qpbench
$GO build -race -o "$WORKDIR/qpserved" ./cmd/qpserved
$GO build -race -o "$WORKDIR/qpload" ./cmd/qpload

echo "store-smoke: generating a store and verifying it"
"$WORKDIR/qpgen" -store "$STORE" -qlen 3 -sources 6 -universe 16384 -seed "$SEED"
"$WORKDIR/qpstore" verify -dir "$STORE" || {
    echo "store-smoke: FAIL: freshly generated store does not verify"
    exit 1
}
"$WORKDIR/qpstore" inspect -dir "$STORE" > "$WORKDIR/inspect.txt"
grep -q "universe" "$WORKDIR/inspect.txt" || {
    echo "store-smoke: FAIL: qpstore inspect printed no summary"
    exit 1
}

# corrupt_byte FILE OFFSET — increment the byte at OFFSET (mod 256), a
# guaranteed single-byte change.
corrupt_byte() {
    orig=$(od -An -tu1 -j "$2" -N 1 "$1" | tr -d ' ')
    new=$(( (orig + 1) % 256 ))
    printf "\\$(printf '%03o' "$new")" \
        | dd of="$1" bs=1 seek="$2" count=1 conv=notrunc 2>/dev/null
}

echo "store-smoke: a corrupted segment byte must fail verification"
cp "$STORE/segments.qps" "$WORKDIR/segments.pristine"
cp "$STORE/catalog.qpc" "$WORKDIR/catalog.pristine"
corrupt_byte "$STORE/segments.qps" 6000
if "$WORKDIR/qpstore" verify -dir "$STORE" > "$WORKDIR/verify_seg.txt" 2>&1; then
    echo "store-smoke: FAIL: verify passed over a corrupted segment file"
    exit 1
fi
cp "$WORKDIR/segments.pristine" "$STORE/segments.qps"

echo "store-smoke: a corrupted catalog byte must fail verification"
corrupt_byte "$STORE/catalog.qpc" 100
if "$WORKDIR/qpstore" verify -dir "$STORE" > "$WORKDIR/verify_cat.txt" 2>&1; then
    echo "store-smoke: FAIL: verify passed over a corrupted catalog file"
    exit 1
fi
cp "$WORKDIR/catalog.pristine" "$STORE/catalog.qpc"
"$WORKDIR/qpstore" verify -dir "$STORE" || {
    echo "store-smoke: FAIL: restored store does not verify"
    exit 1
}
echo "store-smoke: single-byte corruption detected in both files"

echo "store-smoke: booting qpserved -store on a random port"
"$WORKDIR/qpserved" -store "$STORE" -addr 127.0.0.1:0 -seed "$SEED" \
    > "$WORKDIR/served.log" 2>&1 &
SRV_PID=$!

PORT=""
for _ in $(seq 1 50); do
    PORT=$(sed -n 's/^listening on .*:\([0-9][0-9]*\)$/\1/p' "$WORKDIR/served.log")
    [ -n "$PORT" ] && break
    kill -0 "$SRV_PID" 2>/dev/null || { echo "store-smoke: daemon died:"; cat "$WORKDIR/served.log"; exit 1; }
    sleep 0.2
done
[ -n "$PORT" ] || { echo "store-smoke: no port in daemon log"; cat "$WORKDIR/served.log"; exit 1; }
URL="http://127.0.0.1:$PORT"
echo "store-smoke: daemon is up at $URL"
curl -fsS "$URL/healthz" > /dev/null || { echo "store-smoke: healthz failed"; exit 1; }

if [ -n "$FAIL_INJECT" ]; then
    echo "store-smoke: FAIL_INJECT set, exiting mid-run with the daemon up (pid $SRV_PID)"
    echo "$SRV_PID" > "${FAIL_INJECT}"
    exit 42
fi

echo "store-smoke: checking served plan order against qporder -store"
"$WORKDIR/qpload" -url "$URL" -q "$QUERY" -print-plans \
    -algo "$ALGO" -measure "$MEASURE" -k "$K" > "$WORKDIR/served_plans.txt"
"$WORKDIR/qporder" -store "$STORE" -plans-only \
    -algo "$ALGO" -measure "$MEASURE" -k "$K" -seed "$SEED" > "$WORKDIR/direct_plans.txt"
if ! diff -u "$WORKDIR/direct_plans.txt" "$WORKDIR/served_plans.txt"; then
    echo "store-smoke: FAIL: served plan order diverges from qporder -store"
    exit 1
fi
[ -s "$WORKDIR/served_plans.txt" ] || { echo "store-smoke: FAIL: no plans streamed"; exit 1; }
echo "store-smoke: plan order is byte-identical ($(wc -l < "$WORKDIR/served_plans.txt" | tr -d ' ') plans)"

echo "store-smoke: cold-vs-warm store experiment (parity-gated)"
"$WORKDIR/qpbench" -exp store -universe 1024 > "$WORKDIR/bench_store.txt" || {
    echo "store-smoke: FAIL: qpbench -exp store reported divergence:"
    cat "$WORKDIR/bench_store.txt"
    exit 1
}
grep -q "warm" "$WORKDIR/bench_store.txt" || {
    echo "store-smoke: FAIL: store experiment produced no warm rows:"
    cat "$WORKDIR/bench_store.txt"
    exit 1
}

echo "store-smoke: draining via SIGTERM"
kill -TERM "$SRV_PID"
DRAINED=1
for _ in $(seq 1 100); do
    if ! kill -0 "$SRV_PID" 2>/dev/null; then DRAINED=0; break; fi
    sleep 0.2
done
if [ "$DRAINED" -ne 0 ]; then
    echo "store-smoke: FAIL: daemon did not exit after SIGTERM"
    cat "$WORKDIR/served.log"
    exit 1
fi
wait "$SRV_PID" 2>/dev/null || true
SRV_PID=""
grep -q "drained cleanly" "$WORKDIR/served.log" || {
    echo "store-smoke: FAIL: no clean-drain marker in daemon log:"
    cat "$WORKDIR/served.log"
    exit 1
}
if grep -iq "DATA RACE" "$WORKDIR/served.log"; then
    echo "store-smoke: FAIL: race detected in daemon log:"
    cat "$WORKDIR/served.log"
    exit 1
fi
echo "store-smoke: PASS"
