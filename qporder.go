// Package qporder reproduces "Efficiently Ordering Query Plans for Data
// Integration" (Doan & Halevy, ICDE 2002): a data-integration mediator
// substrate (LAV source descriptions, conjunctive queries, the bucket
// algorithm, a MiniCon-style reformulator, containment-based soundness
// testing, and a simulated execution engine) together with the paper's
// plan-ordering algorithms — Greedy, iDrips, Streamer — and the PI and
// Exhaustive baselines.
//
// The package is a facade: it re-exports the library's public surface so
// applications depend on a single import. The underlying packages live in
// internal/ and are documented individually.
//
// # Quick start
//
//	cat := qporder.NewCatalog()
//	def := qporder.MustParseQuery("V1(A, M) :- play-in(A, M)")
//	cat.MustAdd("V1", def, qporder.Stats{Tuples: 100, TransmitCost: 1, Overhead: 10})
//	// ... add more sources ...
//	q := qporder.MustParseQuery("Q(M, R) :- play-in(ford, M), review-of(R, M)")
//	buckets, _ := qporder.BuildBuckets(q, cat)
//	pd := qporder.NewPlanDomain(buckets, cat)
//	m := qporder.NewLinearCost(pd.Entries)
//	o, _ := qporder.NewGreedy([]*qporder.Space{pd.Space}, m)
//	for {
//	    plan, pq, utility, ok, _ := pd.SoundNext(o)
//	    if !ok { break }
//	    _ = plan; _ = pq; _ = utility // optimize & execute pq
//	}
//
// See examples/ for complete programs and DESIGN.md for the architecture.
package qporder

import (
	"qporder/internal/abstraction"
	"qporder/internal/adaptive"
	"qporder/internal/bitset"
	"qporder/internal/containment"
	"qporder/internal/core"
	"qporder/internal/costmodel"
	"qporder/internal/coverage"
	"qporder/internal/execsim"
	"qporder/internal/interval"
	"qporder/internal/lav"
	"qporder/internal/measure"
	"qporder/internal/mediator"
	"qporder/internal/obs"
	"qporder/internal/physopt"
	"qporder/internal/planspace"
	"qporder/internal/reformulate"
	"qporder/internal/schema"
	"qporder/internal/workload"
)

// Schema and query model.
type (
	// Term is a variable or constant in an atom.
	Term = schema.Term
	// Atom is a predicate applied to terms.
	Atom = schema.Atom
	// Query is a conjunctive query or view definition.
	Query = schema.Query
	// Subst maps variables to terms.
	Subst = schema.Subst
)

// Source catalog (LAV).
type (
	// Catalog registers the data sources of a domain.
	Catalog = lav.Catalog
	// Source is one data source with description and statistics.
	Source = lav.Source
	// SourceID identifies a source within a catalog.
	SourceID = lav.SourceID
	// Stats holds the per-source cost/coverage statistics.
	Stats = lav.Stats
)

// Plans and plan spaces.
type (
	// Plan is a (possibly abstract) query plan.
	Plan = planspace.Plan
	// Space is a plan space: the Cartesian product of buckets.
	Space = planspace.Space
	// AbstractionNode is an abstract source (a group of similar sources).
	AbstractionNode = abstraction.Node
	// Heuristic orders bucket sources so similar ones are grouped.
	Heuristic = abstraction.Heuristic
)

// Utility measures.
type (
	// Measure is a utility measure over plans.
	Measure = measure.Measure
	// MeasureContext evaluates plans given an executed prefix.
	MeasureContext = measure.Context
	// Interval is a utility interval for abstract plans.
	Interval = interval.Interval
	// CoverageModel maps sources to covered answer subsets.
	CoverageModel = coverage.Model
	// BitSet is the dense bitset backing coverage sets.
	BitSet = bitset.Set
	// CostParams configures the cost measures.
	CostParams = costmodel.Params
	// WeightedComponent pairs a measure with a weight.
	WeightedComponent = costmodel.Component
)

// Ordering algorithms.
type (
	// Orderer produces plans in decreasing conditional utility.
	Orderer = core.Orderer
	// Greedy is the Section 4 algorithm for fully monotonic measures.
	Greedy = core.Greedy
	// IDrips is the iterated abstraction-based orderer.
	IDrips = core.IDrips
	// Streamer is the dominance-graph orderer of Figure 5.
	Streamer = core.Streamer
	// PI is the independence-aware brute-force baseline.
	PI = core.PI
	// Exhaustive is the naive reference orderer.
	Exhaustive = core.Exhaustive
)

// Observability.
type (
	// ObsRegistry aggregates counters, gauges, histograms, and spans; a
	// nil registry disables all instrumentation.
	ObsRegistry = obs.Registry
	// ObsTracer records phase spans into bounded aggregates.
	ObsTracer = obs.Tracer
	// ObsSpan is one timed (possibly nested) phase.
	ObsSpan = obs.Span
	// ObsCalibration accumulates estimate-vs-actual pairs into q-error,
	// bias, and drift series; nil disables calibration entirely.
	ObsCalibration = obs.Calibration
	// ObsCalibrationSnapshot is a point-in-time calibration report.
	ObsCalibrationSnapshot = obs.CalibrationSnapshot
	// ObsCalibConfig tunes the drift detector; the zero value gets
	// defaults (alpha 0.3, drift factor 4, 3-sample minimum).
	ObsCalibConfig = obs.CalibConfig
)

// Reformulation.
type (
	// Buckets is the bucket algorithm's output.
	Buckets = reformulate.Buckets
	// BucketEntry is one way a source answers one subgoal.
	BucketEntry = reformulate.Entry
	// PlanDomain bridges buckets and ordering.
	PlanDomain = reformulate.PlanDomain
	// MCD is a MiniCon description covering a set of subgoals.
	MCD = reformulate.MCD
	// GeneralizedBuckets groups MCDs by covered subgoal set.
	GeneralizedBuckets = reformulate.GeneralizedBuckets
	// MiniConDomain bridges generalized buckets and ordering.
	MiniConDomain = reformulate.MiniConDomain
	// InverseRule is an inverted source description (Section 7).
	InverseRule = reformulate.InverseRule
)

// Physical optimization.
type (
	// PhysicalPlan is an optimized physical execution plan.
	PhysicalPlan = physopt.Plan
	// PhysicalStep is one operation of a physical plan.
	PhysicalStep = physopt.Step
	// AccessMethod selects bind-join vs full scan.
	AccessMethod = physopt.Method
	// PhysOptParams configures the optimizer.
	PhysOptParams = physopt.Params
)

// The physical access methods.
const (
	// MethodBind pushes bindings into the source (semijoin).
	MethodBind = physopt.Bind
	// MethodScan fetches the full relation and joins locally.
	MethodScan = physopt.Scan
)

// Execution simulator.
type (
	// DB maps relation names to ground tuples.
	DB = execsim.DB
	// Engine executes plans over source contents with cost accounting.
	Engine = execsim.Engine
	// AnswerSet accumulates the union of plan outputs.
	AnswerSet = execsim.AnswerSet
	// WorldConfig parameterizes synthetic world generation.
	WorldConfig = execsim.WorldConfig
	// RelationSpec describes a schema relation for world generation.
	RelationSpec = execsim.RelationSpec
)

// Synthetic workloads.
type (
	// WorkloadConfig parameterizes synthetic experiment domains.
	WorkloadConfig = workload.Config
	// Domain is a generated experiment domain.
	Domain = workload.Domain
)

// Mediator: the assembled data-integration system.
type (
	// Mediator is a configured end-to-end system for one query.
	Mediator = mediator.System
	// MediatorConfig assembles a mediator.
	MediatorConfig = mediator.Config
	// MediatorBudget bounds a mediator run.
	MediatorBudget = mediator.Budget
	// MediatorResult summarizes a mediator run.
	MediatorResult = mediator.Result
	// StopReason reports why a mediator run ended.
	StopReason = mediator.StopReason
)

// Mediator algorithm and reformulator selectors, and stop reasons.
const (
	AlgoAuto        = mediator.Auto
	AlgoGreedy      = mediator.Greedy
	AlgoIDrips      = mediator.IDrips
	AlgoStreamer    = mediator.Streamer
	AlgoPI          = mediator.PI
	AlgoExhaustive  = mediator.Exhaustive
	ViaBuckets      = mediator.Buckets
	ViaInverseRules = mediator.InverseRules
	ViaMiniCon      = mediator.MiniCon
	StopExhausted   = mediator.StopExhausted
	StopMaxPlans    = mediator.StopMaxPlans
	StopMaxCost     = mediator.StopMaxCost
	StopMinAnswers  = mediator.StopMinAnswers
)

// NewMediator reformulates the query and builds the full pipeline.
var NewMediator = mediator.New

// Adaptive execution: statistics tracking and drift-triggered
// re-estimation (see MediatorConfig.Adaptive for the integrated form).
type (
	// AdaptiveTracker accumulates observed source statistics.
	AdaptiveTracker = adaptive.Tracker
	// AdaptiveObservation is one source's accumulated observations.
	AdaptiveObservation = adaptive.Observation
)

var (
	// NewAdaptiveTracker returns a tracker over a catalog's estimates.
	NewAdaptiveTracker = adaptive.NewTracker
	// RemainingSpaces removes executed plans from spaces by splitting.
	RemainingSpaces = adaptive.RemainingSpaces
)

// Parsing.
var (
	// ParseQuery parses one conjunctive query in datalog syntax.
	ParseQuery = schema.ParseQuery
	// ParseProgram parses a newline-separated rule list.
	ParseProgram = schema.ParseProgram
	// MustParseQuery panics on parse errors; for tests and fixtures.
	MustParseQuery = schema.MustParseQuery
)

// Catalog construction.
var (
	// NewCatalog returns an empty source catalog.
	NewCatalog = lav.NewCatalog
)

// Containment.
var (
	// Contains reports conjunctive-query containment q1 ⊆ q2.
	Contains = containment.Contains
	// Equivalent reports mutual containment.
	Equivalent = containment.Equivalent
)

// Reformulation.
var (
	// BuildBuckets runs the bucket algorithm.
	BuildBuckets = reformulate.BuildBuckets
	// NewPlanDomain derives the ordering-facing view of buckets.
	NewPlanDomain = reformulate.NewPlanDomain
	// Expand replaces plan atoms with their source descriptions.
	Expand = reformulate.Expand
	// IsSound tests a plan query's soundness for a user query.
	IsSound = reformulate.IsSound
	// BuildMCDs forms MiniCon descriptions.
	BuildMCDs = reformulate.BuildMCDs
	// NewMiniConDomain enumerates generalized-bucket plan spaces.
	NewMiniConDomain = reformulate.NewMiniConDomain
	// InvertCatalog computes the inverse rules of every described source.
	InvertCatalog = reformulate.InvertCatalog
	// InverseBuckets groups inverse rules into buckets (Section 7).
	InverseBuckets = reformulate.InverseBuckets
	// DatalogProgram assembles the inverse-rule program for a query.
	DatalogProgram = reformulate.DatalogProgram
	// IsSkolem reports whether a term is an inversion Skolem constant.
	IsSkolem = reformulate.IsSkolem
	// Optimize chooses join order and access methods for a plan query.
	Optimize = physopt.Optimize
)

// Plan spaces.
var (
	// NewSpace builds a plan space over buckets of source IDs.
	NewSpace = planspace.NewSpace
	// NewPlan builds a plan from abstraction nodes.
	NewPlan = planspace.New
	// BuildLeaves builds shared leaf nodes for concrete enumeration.
	BuildLeaves = abstraction.BuildLeaves
	// BuildHierarchy builds per-bucket abstraction hierarchies.
	BuildHierarchy = abstraction.Build
)

// Abstraction heuristics.
var (
	// ByTuples groups sources with similar expected output sizes.
	ByTuples = abstraction.ByTuples
	// ByAccessCost groups sources with similar standalone access cost.
	ByAccessCost = abstraction.ByAccessCost
	// ByKey groups by an arbitrary numeric similarity key.
	ByKey = abstraction.ByKey
	// ByID is the uninformed (registration-order) grouping.
	ByID = abstraction.ByID
)

// Utility measures.
var (
	// NewCoverageModel returns a coverage model over a universe size.
	NewCoverageModel = coverage.NewModel
	// NewBitSet returns an empty bitset of the given capacity.
	NewBitSet = bitset.New
	// NewCoverageMeasure returns the plan-coverage measure.
	NewCoverageMeasure = coverage.NewMeasure
	// NewLinearCost returns cost measure (1) — fully monotonic.
	NewLinearCost = costmodel.NewLinearCost
	// NewChainCost returns cost measure (2) with failure/caching options.
	NewChainCost = costmodel.NewChainCost
	// NewMonetaryPerTuple returns the monetary cost-per-tuple measure.
	NewMonetaryPerTuple = costmodel.NewMonetaryPerTuple
	// NewWeighted combines measures linearly (Example 1.2).
	NewWeighted = costmodel.NewWeighted
)

// Ordering algorithms.
var (
	// NewGreedy builds the Greedy orderer (fully monotonic measures).
	NewGreedy = core.NewGreedy
	// NewIDrips builds the iterated-Drips orderer.
	NewIDrips = core.NewIDrips
	// NewStreamer builds the Streamer orderer (diminishing returns).
	NewStreamer = core.NewStreamer
	// NewPI builds the independence-aware brute-force baseline.
	NewPI = core.NewPI
	// NewExhaustive builds the naive reference orderer.
	NewExhaustive = core.NewExhaustive
	// DripsBest runs one Drips search for the current best plan.
	DripsBest = core.DripsBest
	// Take drains up to k plans from an orderer.
	Take = core.Take
	// Instrument binds an observability registry to an orderer.
	Instrument = core.Instrument
	// NewObsRegistry builds an empty observability registry.
	NewObsRegistry = obs.NewRegistry
	// NewCalibration builds an estimator-calibration accumulator.
	NewCalibration = obs.NewCalibration
	// RegisterRuntimeMetrics attaches Go runtime gauges to a registry.
	RegisterRuntimeMetrics = obs.RegisterRuntimeMetrics
	// StartSpan opens a span on a tracer (nil tracer: no-op span).
	StartSpan = obs.StartSpan
)

// Execution simulation.
var (
	// NewEngine builds an execution engine over source contents.
	NewEngine = execsim.NewEngine
	// NewAnswerSet returns an empty answer accumulator.
	NewAnswerSet = execsim.NewAnswerSet
	// EvalQuery evaluates a conjunctive query on a database.
	EvalQuery = execsim.Eval
	// EvalProgram evaluates a (possibly recursive) datalog program.
	EvalProgram = execsim.EvalProgram
	// FilterAnswers keeps the atoms satisfying a predicate.
	FilterAnswers = execsim.FilterAnswers
	// GenerateWorld builds a random ground database.
	GenerateWorld = execsim.GenerateWorld
	// PopulateSources derives incomplete source contents from a world.
	PopulateSources = execsim.PopulateSources
)

// Synthetic workloads.
var (
	// GenerateWorkload builds a synthetic experiment domain.
	GenerateWorkload = workload.Generate
)
