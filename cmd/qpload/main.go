// Command qpload replays a query workload against a qpserved daemon at a
// target concurrency and request rate, consuming the NDJSON streams and
// reporting latency percentiles for time-to-first-answer and full-k
// completion.
//
// Usage:
//
//	qpload -url http://127.0.0.1:8091 -q 'Q(M, R) :- play-in(A, M), review-of(R, M)' -n 64 -c 8
//	qpload -url http://127.0.0.1:8091 -q '...' -qps 50 -shuffle -json
//	qpload -url http://127.0.0.1:8091 -q '...' -print-plans -algo streamer -measure chain
//
// -shuffle perturbs each request (variables renamed, body atoms
// permuted) without changing its meaning, exercising the daemon's
// canonicalized session cache the way distinct clients would.
// -print-plans runs a single session and prints one plan per line, for
// diffing against qporder -plans-only.
//
// Fleet mode targets a qprouter front end instead of a single daemon:
//
//	qpload -router http://127.0.0.1:8090 -q '...' -sweep 1,2,4,8,16,32 -json
//	qpload -url http://127.0.0.1:8090 -q '...' -scatter -print-plans
//
// -router sweeps the workload across the given concurrency levels and
// reports the throughput knee — the smallest concurrency already
// delivering ~90% of the fleet's best QPS — plus a per-shard breakdown
// (sessions, answers, latency quantiles from the router's
// fleet.shard<i>.* instruments) that makes shard skew visible.
// -scatter asks the router to partition the PI plan space across its
// shards and gather the streams (works with any qpload mode pointed at
// a router).
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"qporder/internal/server"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "qpload:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		url        = flag.String("url", "http://127.0.0.1:8091", "base URL of the qpserved daemon")
		query      = flag.String("q", "", "query to replay (required)")
		requests   = flag.Int("n", 32, "total sessions to run")
		conc       = flag.Int("c", 4, "concurrent workers")
		k          = flag.Int("k", 0, "plan budget per session (0: server default)")
		meas       = flag.String("measure", "", "utility measure (empty: server default)")
		algo       = flag.String("algo", "", "ordering algorithm (empty: server default)")
		reform     = flag.String("reform", "", "reformulator (empty: server default)")
		deadline   = flag.Int64("deadline-ms", 0, "per-session deadline (0: server default)")
		par        = flag.Int("parallelism", 0, "mediator pipeline width per session")
		qps        = flag.Float64("qps", 0, "aggregate request rate (0: closed loop)")
		shuffle    = flag.Bool("shuffle", false, "perturb each request's query (rename + reorder)")
		seed       = flag.Int64("seed", 1, "seed for -shuffle")
		asJSON     = flag.Bool("json", false, "emit the report as JSON")
		outFile    = flag.String("out", "", "also write the report as schema-versioned JSON to this file")
		printPlans = flag.Bool("print-plans", false, "run one session and print its plan order")
		router     = flag.String("router", "", "qprouter base URL: sweep -sweep concurrency levels and report the throughput knee")
		scatter    = flag.Bool("scatter", false, "ask the router to scatter the plan space across its shards")
		sweep      = flag.String("sweep", "1,2,4,8,16,32", "comma-separated concurrency levels for -router mode")
	)
	flag.Parse()
	if *query == "" {
		return fmt.Errorf("missing -q query")
	}
	base := *url
	if *router != "" {
		base = *router
	}
	cfg := server.LoadConfig{
		BaseURL:      base,
		Queries:      []string{*query},
		Requests:     *requests,
		Concurrency:  *conc,
		K:            *k,
		Measure:      *meas,
		Algorithm:    *algo,
		Reformulator: *reform,
		DeadlineMS:   *deadline,
		Parallelism:  *par,
		QPS:          *qps,
		Shuffle:      *shuffle,
		Seed:         *seed,
		Scatter:      *scatter,
	}

	if *router != "" && !*printPlans {
		return runFleetSweep(cfg, *sweep, *asJSON, *outFile)
	}

	if *printPlans {
		plans, err := server.StreamPlans(context.Background(), base, cfg, *query)
		if err != nil {
			return err
		}
		for _, p := range plans {
			fmt.Println(p)
		}
		return nil
	}

	rep, err := server.RunLoad(context.Background(), cfg)
	if err != nil {
		return err
	}
	if *outFile != "" {
		f, err := os.Create(*outFile)
		if err != nil {
			return err
		}
		enc := json.NewEncoder(f)
		enc.SetIndent("", "  ")
		if err := enc.Encode(rep); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
	}
	if *asJSON {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(rep); err != nil {
			return err
		}
	} else {
		fmt.Printf("requests: %d  errors: %d  plans: %d  answers: %d\n",
			rep.Requests, rep.Errors, rep.Plans, rep.Answers)
		fmt.Printf("duration: %.1f ms  throughput: %.1f sessions/s\n", rep.DurationMS, rep.QPS)
		fmt.Printf("ttfa   p50=%.2fms p90=%.2fms p99=%.2fms max=%.2fms\n",
			rep.TTFA.P50, rep.TTFA.P90, rep.TTFA.P99, rep.TTFA.Max)
		fmt.Printf("full-k p50=%.2fms p90=%.2fms p99=%.2fms max=%.2fms\n",
			rep.Full.P50, rep.Full.P90, rep.Full.P99, rep.Full.Max)
		if len(rep.Slowest) > 0 {
			fmt.Println("slowest sessions (trace IDs; look them up at /debug/requests?trace=ID):")
			for _, s := range rep.Slowest {
				fmt.Printf("  %s  %.2fms\n", s.TraceID, s.FullMS)
			}
		}
		if rep.FirstError != "" {
			fmt.Printf("first error: %s\n", rep.FirstError)
		}
	}
	if rep.Errors > 0 {
		return fmt.Errorf("%d of %d sessions failed", rep.Errors, rep.Requests)
	}
	return nil
}

// runFleetSweep drives the -router mode: the same workload at each
// concurrency level, looking for the throughput knee.
func runFleetSweep(cfg server.LoadConfig, sweep string, asJSON bool, outFile string) error {
	var levels []int
	for _, part := range strings.Split(sweep, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		c, err := strconv.Atoi(part)
		if err != nil || c <= 0 {
			return fmt.Errorf("bad -sweep level %q", part)
		}
		levels = append(levels, c)
	}
	rep, err := server.RunFleetSweep(context.Background(), cfg, levels)
	if err != nil {
		return err
	}
	if outFile != "" {
		f, err := os.Create(outFile)
		if err != nil {
			return err
		}
		enc := json.NewEncoder(f)
		enc.SetIndent("", "  ")
		if err := enc.Encode(rep); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
	}
	if asJSON {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		return enc.Encode(rep)
	}
	fmt.Printf("fleet sweep against %s (scatter=%v)\n", rep.BaseURL, rep.Scatter)
	for _, p := range rep.Points {
		marker := " "
		if p.Concurrency == rep.Knee {
			marker = "*"
		}
		fmt.Printf("%s c=%-3d qps=%8.1f errors=%d full p50=%.2fms p99=%.2fms\n",
			marker, p.Concurrency, p.QPS, p.Errors, p.Full.P50, p.Full.P99)
	}
	fmt.Printf("knee: c=%d reaches %.0f%% of max %.1f qps\n", rep.Knee, 100*rep.KneeFraction, rep.MaxQPS)
	if len(rep.Shards) > 0 {
		fmt.Println("per-shard load (skew check; counts are sweep deltas):")
		for _, s := range rep.Shards {
			fmt.Printf("  shard%-2d sessions=%-6d answers=%-8d latency p50=%.2fms p99=%.2fms\n",
				s.Shard, s.Sessions, s.Answers, s.LatencyP50MS, s.LatencyP99MS)
		}
	}
	errs := 0
	for _, p := range rep.Points {
		errs += p.Errors
	}
	if errs > 0 {
		return fmt.Errorf("%d sessions failed across the sweep", errs)
	}
	return nil
}
