// Command qpload replays a query workload against a qpserved daemon at a
// target concurrency and request rate, consuming the NDJSON streams and
// reporting latency percentiles for time-to-first-answer and full-k
// completion.
//
// Usage:
//
//	qpload -url http://127.0.0.1:8091 -q 'Q(M, R) :- play-in(A, M), review-of(R, M)' -n 64 -c 8
//	qpload -url http://127.0.0.1:8091 -q '...' -qps 50 -shuffle -json
//	qpload -url http://127.0.0.1:8091 -q '...' -print-plans -algo streamer -measure chain
//
// -shuffle perturbs each request (variables renamed, body atoms
// permuted) without changing its meaning, exercising the daemon's
// canonicalized session cache the way distinct clients would.
// -print-plans runs a single session and prints one plan per line, for
// diffing against qporder -plans-only.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"qporder/internal/server"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "qpload:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		url        = flag.String("url", "http://127.0.0.1:8091", "base URL of the qpserved daemon")
		query      = flag.String("q", "", "query to replay (required)")
		requests   = flag.Int("n", 32, "total sessions to run")
		conc       = flag.Int("c", 4, "concurrent workers")
		k          = flag.Int("k", 0, "plan budget per session (0: server default)")
		meas       = flag.String("measure", "", "utility measure (empty: server default)")
		algo       = flag.String("algo", "", "ordering algorithm (empty: server default)")
		reform     = flag.String("reform", "", "reformulator (empty: server default)")
		deadline   = flag.Int64("deadline-ms", 0, "per-session deadline (0: server default)")
		par        = flag.Int("parallelism", 0, "mediator pipeline width per session")
		qps        = flag.Float64("qps", 0, "aggregate request rate (0: closed loop)")
		shuffle    = flag.Bool("shuffle", false, "perturb each request's query (rename + reorder)")
		seed       = flag.Int64("seed", 1, "seed for -shuffle")
		asJSON     = flag.Bool("json", false, "emit the report as JSON")
		outFile    = flag.String("out", "", "also write the report as schema-versioned JSON to this file")
		printPlans = flag.Bool("print-plans", false, "run one session and print its plan order")
	)
	flag.Parse()
	if *query == "" {
		return fmt.Errorf("missing -q query")
	}
	cfg := server.LoadConfig{
		BaseURL:      *url,
		Queries:      []string{*query},
		Requests:     *requests,
		Concurrency:  *conc,
		K:            *k,
		Measure:      *meas,
		Algorithm:    *algo,
		Reformulator: *reform,
		DeadlineMS:   *deadline,
		Parallelism:  *par,
		QPS:          *qps,
		Shuffle:      *shuffle,
		Seed:         *seed,
	}

	if *printPlans {
		plans, err := server.StreamPlans(context.Background(), *url, cfg, *query)
		if err != nil {
			return err
		}
		for _, p := range plans {
			fmt.Println(p)
		}
		return nil
	}

	rep, err := server.RunLoad(context.Background(), cfg)
	if err != nil {
		return err
	}
	if *outFile != "" {
		f, err := os.Create(*outFile)
		if err != nil {
			return err
		}
		enc := json.NewEncoder(f)
		enc.SetIndent("", "  ")
		if err := enc.Encode(rep); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
	}
	if *asJSON {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(rep); err != nil {
			return err
		}
	} else {
		fmt.Printf("requests: %d  errors: %d  plans: %d  answers: %d\n",
			rep.Requests, rep.Errors, rep.Plans, rep.Answers)
		fmt.Printf("duration: %.1f ms  throughput: %.1f sessions/s\n", rep.DurationMS, rep.QPS)
		fmt.Printf("ttfa   p50=%.2fms p90=%.2fms p99=%.2fms max=%.2fms\n",
			rep.TTFA.P50, rep.TTFA.P90, rep.TTFA.P99, rep.TTFA.Max)
		fmt.Printf("full-k p50=%.2fms p90=%.2fms p99=%.2fms max=%.2fms\n",
			rep.Full.P50, rep.Full.P90, rep.Full.P99, rep.Full.Max)
		if len(rep.Slowest) > 0 {
			fmt.Println("slowest sessions (trace IDs; look them up at /debug/requests?trace=ID):")
			for _, s := range rep.Slowest {
				fmt.Printf("  %s  %.2fms\n", s.TraceID, s.FullMS)
			}
		}
		if rep.FirstError != "" {
			fmt.Printf("first error: %s\n", rep.FirstError)
		}
	}
	if rep.Errors > 0 {
		return fmt.Errorf("%d of %d sessions failed", rep.Errors, rep.Requests)
	}
	return nil
}
