// Command qpbench regenerates the paper's evaluation (Section 6): every
// panel of Figure 6, the overlap-rate and query-length sweeps described
// in the text, the plans-evaluated fraction, and a Greedy scaling
// experiment for Section 4.
//
// Usage:
//
//	qpbench                        # run everything with default sizes
//	qpbench -exp fig6a,fig6b      # selected panels
//	qpbench -exp fig6 -sizes 10,20,40
//	qpbench -exp overlap,qlen,evalfrac,greedy
//	qpbench -csv                   # machine-readable output
package main

import (
	"encoding/json"
	"expvar"
	"flag"
	"fmt"
	"net/http"
	_ "net/http/pprof"
	"os"
	"runtime"
	"strconv"
	"strings"
	"time"

	"qporder/internal/experiment"
	"qporder/internal/obs"
	"qporder/internal/stats"
	"qporder/internal/workload"
)

func main() {
	var (
		expFlag   = flag.String("exp", "all", "experiments: all, fig6, fig6a..fig6l, overlap, qlen, evalfrac, ablation, tta, soundness, greedy, par, serve, fleet, calibration, batch, store (comma-separated)")
		sizesFlag = flag.String("sizes", "10,20,40,60,80", "bucket sizes for Figure 6 panels")
		seed      = flag.Int64("seed", 42, "workload seed")
		qlen      = flag.Int("qlen", 3, "query length (paper default 3)")
		zones     = flag.Int("zones", 3, "coverage zones; overlap rate ≈ 1/zones (paper default 0.3)")
		universe  = flag.Int("universe", 4096, "coverage universe size")
		csv       = flag.Bool("csv", false, "emit CSV instead of aligned tables")
		metrics   = flag.String("metrics-json", "", "write the machine-readable metrics report (JSON) to this path")
		pprofAddr = flag.String("pprof", "", "serve net/http/pprof and expvar on this address (e.g. :6060)")
		par       = flag.Int("parallelism", 1, "orderer worker count for the par experiment and the parallel metrics records (1 = sequential only)")
		compare   = flag.String("compare", "", "baseline metrics JSON to regression-check sequential ns/plan against (exit 1 on regression)")
		regThresh = flag.Float64("regress-threshold", 0.20, "allowed ns/plan worsening vs -compare baseline (0.20 = 20%)")
		reps      = flag.Int("reps", 3, "timing repetitions per metrics cell (best-of-N; sub-second cells only)")
		calibFlag = flag.Bool("calibration", false, "run the estimator-calibration experiment (alias for -exp calibration)")
	)
	flag.Parse()

	var reg *obs.Registry
	if *pprofAddr != "" {
		reg = obs.NewRegistry()
		expvar.Publish("qporder", reg)
		go func() {
			if err := http.ListenAndServe(*pprofAddr, nil); err != nil {
				fmt.Fprintln(os.Stderr, "qpbench: pprof server:", err)
			}
		}()
		fmt.Fprintf(os.Stderr, "pprof: serving %s (/debug/pprof/, /debug/vars)\n", *pprofAddr)
	}

	sizes, err := parseInts(*sizesFlag)
	if err != nil {
		fmt.Fprintln(os.Stderr, "qpbench: bad -sizes:", err)
		os.Exit(2)
	}
	base := workload.Config{QueryLen: *qlen, Zones: *zones, Universe: *universe, Seed: *seed}
	dc := make(experiment.DomainCache)

	want := map[string]bool{}
	for _, e := range strings.Split(*expFlag, ",") {
		want[strings.TrimSpace(e)] = true
	}
	if *calibFlag {
		// -calibration alone runs just that experiment; combined with
		// -exp it adds the calibration cell to the selection.
		if *expFlag == "all" {
			delete(want, "all")
		}
		want["calibration"] = true
	}
	wants := func(names ...string) bool {
		if want["all"] {
			return true
		}
		for _, n := range names {
			if want[n] {
				return true
			}
		}
		return false
	}

	render := func(t *stats.Table) {
		if *csv {
			t.CSV(os.Stdout)
		} else {
			t.Render(os.Stdout)
		}
		fmt.Println()
	}

	start := time.Now()
	for _, p := range experiment.Fig6Panels() {
		if !wants("fig6", "fig"+p.ID) {
			continue
		}
		fmt.Printf("== Figure %s: %s (qlen=%d, overlap≈%.2f) ==\n", p.ID, p.Title, *qlen, 1/float64(*zones))
		pr := experiment.RunPanel(dc, p, sizes, base)
		render(pr.Table())
	}

	if wants("overlap") {
		fmt.Println("== Overlap-rate sweep: coverage, k=10, PI vs Streamer ==")
		cfg := base
		cfg.BucketSize = 40
		pts := experiment.RunOverlapSweep(dc, []int{10, 5, 3, 2, 1}, 10, cfg)
		render(experiment.SweepTable(pts, []experiment.Algorithm{experiment.AlgoPI, experiment.AlgoStreamer}))
	}

	if wants("qlen") {
		fmt.Println("== Query-length sweep: coverage, k=10, bucket=10 ==")
		cfg := base
		cfg.BucketSize = 10
		pts := experiment.RunQueryLenSweep(dc, []int{1, 2, 3, 4, 5, 6, 7}, 10, experiment.MeasureCoverage, cfg)
		render(experiment.SweepTable(pts, []experiment.Algorithm{
			experiment.AlgoPI, experiment.AlgoIDrips, experiment.AlgoStreamer}))
	}

	if wants("evalfrac") {
		fmt.Println("== Plans evaluated, first plan: Streamer vs PI (paper: <4%) ==")
		t := stats.NewTable("bucket", "streamer-evals", "pi-evals", "fraction")
		for _, m := range sizes {
			cfg := base
			cfg.BucketSize = m
			s, p, f := experiment.EvalFraction(dc, cfg)
			t.Add(fmt.Sprint(m), fmt.Sprint(s), fmt.Sprint(p), fmt.Sprintf("%.2f%%", 100*f))
		}
		render(t)
	}

	if wants("tta") {
		fmt.Println("== Time to answers: ordered (coverage/Streamer) vs unordered execution ==")
		cfg := base
		cfg.BucketSize = 12
		d := dc.Get(cfg)
		r, err := experiment.RunFirstAnswers(d, []float64{0.25, 0.5, 0.75, 0.9, 1.0})
		if err != nil {
			fmt.Fprintln(os.Stderr, "qpbench: tta:", err)
			os.Exit(1)
		}
		fmt.Printf("(%d total answers, full cost %.0f)\n", r.TotalAnswers, r.TotalCost)
		render(r.Table())
	}

	if wants("soundness") {
		fmt.Println("== Sound-plan density and rank of first sound plan (Section 2's argument) ==")
		r, err := experiment.RunSoundness(200, *seed)
		if err != nil {
			fmt.Fprintln(os.Stderr, "qpbench: soundness:", err)
			os.Exit(1)
		}
		render(r.Table())
	}

	if wants("ablation") {
		fmt.Println("== Heuristic ablation: coverage, k=10, bucket=40 ==")
		cfg := base
		cfg.BucketSize = 40
		render(experiment.AblationTable(experiment.RunHeuristicAblation(dc, 10, cfg)))
	}

	if wants("par") {
		workers := *par
		if workers <= 1 {
			workers = 4
		}
		fmt.Printf("== Sequential vs parallel ordering: coverage, k=10, %d workers (%d CPUs) ==\n",
			workers, runtime.NumCPU())
		t := stats.NewTable("bucket", "algorithm", "seq-time", "par-time", "speedup", "evals-match")
		for _, m := range sizes {
			cfg := base
			cfg.BucketSize = m
			d := dc.Get(cfg)
			for _, algo := range []experiment.Algorithm{
				experiment.AlgoPI, experiment.AlgoIDrips, experiment.AlgoStreamer,
			} {
				seq := experiment.Run(d, experiment.Cell{Algo: algo, Measure: experiment.MeasureCoverage, K: 10, Config: cfg})
				p := experiment.Run(d, experiment.Cell{Algo: algo, Measure: experiment.MeasureCoverage, K: 10, Config: cfg, Parallelism: workers})
				speedup := float64(seq.Time) / float64(p.Time)
				t.Add(fmt.Sprint(m), string(algo),
					stats.FormatDuration(seq.Time), stats.FormatDuration(p.Time),
					fmt.Sprintf("%.2fx", speedup), fmt.Sprint(seq.Evals == p.Evals))
			}
		}
		render(t)
	}

	var serveRecs []experiment.ServeRecord
	if wants("serve") {
		fmt.Println("== Serving throughput: qpserved-equivalent daemon, chain/streamer, warm session cache ==")
		cfg := base
		cfg.BucketSize = 12
		recs, err := experiment.RunServe(dc.Get(cfg), experiment.ServeConfig{})
		if err != nil {
			fmt.Fprintln(os.Stderr, "qpbench: serve:", err)
			os.Exit(1)
		}
		serveRecs = recs
		render(experiment.ServeTable(recs))
	}

	var fleetRecs []experiment.FleetRecord
	if wants("fleet") {
		fmt.Println("== Fleet throughput: sharded daemons behind a consistent-hash router, affinity vs scatter ==")
		cfg := base
		// Session cost is dominated by simulated plan execution; a small
		// bucket keeps the whole two-mode sweep in the tens of seconds.
		cfg.BucketSize = 6
		recs, err := experiment.RunFleet(dc.Get(cfg), experiment.FleetConfig{})
		if err != nil {
			fmt.Fprintln(os.Stderr, "qpbench: fleet:", err)
			os.Exit(1)
		}
		fleetRecs = recs
		render(experiment.FleetTable(recs))
	}

	if wants("calibration") {
		fmt.Println("== Estimator calibration: fresh vs stale statistics (stale must trip the drift detector) ==")
		cfg := base
		cfg.QueryLen = 2
		cfg.BucketSize = 4
		recs, err := experiment.RunCalibration(cfg, 16, 12)
		if err != nil {
			fmt.Fprintln(os.Stderr, "qpbench: calibration:", err)
			os.Exit(1)
		}
		render(experiment.CalibTable(recs))
		for _, r := range recs {
			if r.Scenario == "stale" && len(r.Drifted) == 0 {
				fmt.Fprintln(os.Stderr, "qpbench: calibration: stale scenario did not trip the drift detector")
				os.Exit(1)
			}
		}
	}

	var storeRecs []experiment.StoreRecord
	if wants("store") {
		// The sweep runs against a catalog 16× the default in-memory
		// universe (per-source answer sets an order of magnitude past
		// what default runs hold), persisted to disk and re-read cold
		// and warm through the segment store's page-touch tracker.
		cfg := base
		cfg.Universe = *universe * 16
		cfg.BucketSize = 12
		fmt.Printf("== Segment store: in-memory vs store-backed cold/warm, universe %d (16x default) ==\n", cfg.Universe)
		recs, err := experiment.RunStore(experiment.StoreConfig{Config: cfg})
		if err != nil {
			fmt.Fprintln(os.Stderr, "qpbench: store:", err)
			os.Exit(1)
		}
		storeRecs = recs
		render(experiment.StoreTable(recs))
		for _, r := range recs {
			if r.Error == "" && !r.Parity {
				fmt.Fprintf(os.Stderr, "qpbench: store: %s/%s diverged from the in-memory stream\n", r.Mode, r.Algorithm)
				os.Exit(1)
			}
		}
	}

	var batchRecs []experiment.MetricRecord
	if wants("batch") {
		fmt.Println("== Frontier-batched evaluation: tiled kernels vs per-plan scalar, coverage ==")
		// A fixed bucket size keeps the {algo, bucket, k=frontier}
		// baseline keys stable regardless of -sizes.
		cfg := base
		cfg.BucketSize = 20
		batchRecs = experiment.RunBatchSweep(dc.Get(cfg), experiment.DefaultBatchFrontiers, *reps)
		render(experiment.BatchTable(batchRecs))
	}

	if wants("greedy") {
		fmt.Println("== Greedy scaling (Section 4): linear cost, k=20 ==")
		t := stats.NewTable("bucket", "greedy-time", "greedy-evals", "exhaustive-time", "exhaustive-evals")
		for _, m := range sizes {
			cfg := base
			cfg.BucketSize = m
			d := dc.Get(cfg)
			g := runCell(d, experiment.AlgoGreedy, experiment.MeasureLinear, 20, cfg)
			e := runCell(d, experiment.AlgoExhaustive, experiment.MeasureLinear, 20, cfg)
			t.Add(fmt.Sprint(m),
				stats.FormatDuration(g.Time), fmt.Sprint(g.Evals),
				stats.FormatDuration(e.Time), fmt.Sprint(e.Evals))
		}
		render(t)
	}

	if *metrics != "" || *compare != "" {
		rep := buildMetrics(dc, sizes, base, reg, *par, *reps)
		rep.Records = append(rep.Records, batchRecs...)
		rep.Serve = serveRecs
		rep.Fleet = fleetRecs
		rep.Store = storeRecs
		if *metrics != "" {
			if err := writeReport(*metrics, rep); err != nil {
				fmt.Fprintln(os.Stderr, "qpbench: metrics:", err)
				os.Exit(1)
			}
			fmt.Printf("metrics: wrote %s\n", *metrics)
		}
		if *compare != "" {
			if !checkRegressions(rep, *compare, *regThresh) {
				os.Exit(1)
			}
		}
	}

	fmt.Printf("total: %s\n", stats.FormatDuration(time.Since(start)))
}

// buildMetrics runs the instrumented benchmark cells — coverage with PI,
// iDrips, and Streamer (k=10) plus linear cost with Greedy (k=20) at each
// bucket size — and assembles the MetricsReport document. With par > 1
// each cell also runs with that worker count, so the report carries
// sequential-vs-parallel pairs (tagged by the parallelism field). Cells
// are timed best-of-reps (sub-second cells only) so the micro cells
// aren't at the mercy of one scheduler hiccup.
func buildMetrics(dc experiment.DomainCache, sizes []int, base workload.Config, reg *obs.Registry, par, reps int) experiment.MetricsReport {
	var recs []experiment.MetricRecord
	for _, m := range sizes {
		cfg := base
		cfg.BucketSize = m
		cells := []experiment.Cell{
			{Algo: experiment.AlgoPI, Measure: experiment.MeasureCoverage, K: 10, Config: cfg, Reps: reps},
			{Algo: experiment.AlgoIDrips, Measure: experiment.MeasureCoverage, K: 10, Config: cfg, Reps: reps},
			{Algo: experiment.AlgoStreamer, Measure: experiment.MeasureCoverage, K: 10, Config: cfg, Reps: reps},
			{Algo: experiment.AlgoGreedy, Measure: experiment.MeasureLinear, K: 20, Config: cfg, Reps: reps},
		}
		if par > 1 {
			for _, c := range cells[:len(cells):len(cells)] {
				c.Parallelism = par
				cells = append(cells, c)
			}
		}
		recs = append(recs, experiment.CollectMetrics(dc.Get(cfg), cells, reg)...)
	}
	return experiment.MetricsReport{
		SchemaVersion: experiment.MetricsSchemaVersion,
		Workload:      base,
		CPUs:          runtime.NumCPU(),
		GoMaxProcs:    runtime.GOMAXPROCS(0),
		Records:       recs,
	}
}

func writeReport(path string, rep experiment.MetricsReport) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rep); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// checkRegressions compares the current report's sequential ns/plan
// against the baseline file; it prints every regression and returns
// false when any cell worsened beyond the threshold.
func checkRegressions(cur experiment.MetricsReport, baselinePath string, threshold float64) bool {
	raw, err := os.ReadFile(baselinePath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "qpbench: compare:", err)
		return false
	}
	var base experiment.MetricsReport
	if err := json.Unmarshal(raw, &base); err != nil {
		fmt.Fprintln(os.Stderr, "qpbench: compare:", err)
		return false
	}
	regs := experiment.CompareReports(cur, base, threshold)
	aregs := experiment.CompareAllocs(cur, base, threshold)
	if len(regs) == 0 && len(aregs) == 0 {
		fmt.Printf("compare: no sequential ns/plan or allocs/eval regression vs %s (threshold %.0f%%)\n",
			baselinePath, 100*threshold)
		return true
	}
	for _, r := range regs {
		fmt.Fprintf(os.Stderr,
			"qpbench: REGRESSION %s/%s bucket=%d k=%d: %d ns/plan vs baseline %d (%.2fx > %.2fx)\n",
			r.Record.Algorithm, r.Record.Measure, r.Record.BucketSize, r.Record.K,
			r.Record.NsPerPlan, r.Baseline, r.Ratio, 1+threshold)
	}
	for _, r := range aregs {
		fmt.Fprintf(os.Stderr,
			"qpbench: ALLOC REGRESSION %s/%s bucket=%d k=%d: %.2f allocs/eval vs baseline %.2f (%.2fx > %.2fx)\n",
			r.Record.Algorithm, r.Record.Measure, r.Record.BucketSize, r.Record.K,
			r.Record.MallocsPerEval, r.Baseline, r.Ratio, 1+threshold)
	}
	return false
}

func runCell(d *workload.Domain, algo experiment.Algorithm, m experiment.MeasureKey, k int, cfg workload.Config) experiment.Result {
	return experiment.Run(d, experiment.Cell{Algo: algo, Measure: m, K: k, Config: cfg})
}

func parseInts(s string) ([]int, error) {
	var out []int
	for _, part := range strings.Split(s, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil {
			return nil, err
		}
		if n <= 0 {
			return nil, fmt.Errorf("non-positive size %d", n)
		}
		out = append(out, n)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("empty size list")
	}
	return out, nil
}
