// Command qpstore builds, inspects, and verifies disk-backed segment
// stores (internal/store): a page-aligned segment file holding every
// source's coverage bitset plus a checksummed statistics catalog.
//
// Usage:
//
//	qpstore build -dir /tmp/s -qlen 3 -sources 8 -universe 65536 -seed 7
//	qpstore inspect -dir /tmp/s
//	qpstore verify -dir /tmp/s
//
// `verify` exits non-zero when any byte of either file is corrupt;
// scripts/store_smoke.sh leans on that to gate CI.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"qporder/internal/store"
	"qporder/internal/workload"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	var err error
	switch os.Args[1] {
	case "build":
		err = runBuild(os.Args[2:])
	case "inspect":
		err = runInspect(os.Args[2:])
	case "verify":
		err = runVerify(os.Args[2:])
	case "-h", "-help", "--help", "help":
		usage()
		return
	default:
		fmt.Fprintf(os.Stderr, "qpstore: unknown subcommand %q\n\n", os.Args[1])
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "qpstore:", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprint(os.Stderr, `usage: qpstore <subcommand> [flags]

subcommands:
  build    generate a workload domain and persist it as a store directory
  inspect  print the segment header and catalog summary of a store
  verify   exhaustively check every checksum and invariant of a store
`)
}

func runBuild(args []string) error {
	fs := flag.NewFlagSet("qpstore build", flag.ExitOnError)
	var (
		dir      = fs.String("dir", "", "output store directory (required)")
		qlen     = fs.Int("qlen", 3, "query length (number of subgoals)")
		sources  = fs.Int("sources", 8, "sources per subgoal")
		universe = fs.Int("universe", 4096, "coverage universe size")
		zones    = fs.Int("zones", 3, "coverage zones; overlap rate ≈ 1/zones")
		n        = fs.Float64("N", 0, "cost-measure selectivity denominator (0 = default)")
		seed     = fs.Int64("seed", 1, "random seed")
	)
	fs.Parse(args)
	if *dir == "" {
		return fmt.Errorf("build: -dir is required")
	}
	d := workload.Generate(workload.Config{
		QueryLen: *qlen, BucketSize: *sources,
		Universe: *universe, Zones: *zones, N: *n, Seed: *seed,
	})
	if err := store.WriteDomain(*dir, d); err != nil {
		return err
	}
	fmt.Printf("built %s: %d sources over %d subgoals, universe %d, seed %d\n",
		*dir, d.Catalog.Len(), len(d.Buckets), d.Coverage.Universe(), *seed)
	return nil
}

func runInspect(args []string) error {
	fs := flag.NewFlagSet("qpstore inspect", flag.ExitOnError)
	dir := fs.String("dir", "", "store directory (required)")
	full := fs.Bool("sources", false, "also list every source record")
	fs.Parse(args)
	if *dir == "" {
		return fmt.Errorf("inspect: -dir is required")
	}
	st, err := store.Open(*dir)
	if err != nil {
		return err
	}
	defer st.Close()
	hdr, cat := st.Header(), st.Catalog()
	segInfo, err := os.Stat(filepath.Join(*dir, store.SegmentsFile))
	if err != nil {
		return err
	}
	catInfo, err := os.Stat(filepath.Join(*dir, store.CatalogFile))
	if err != nil {
		return err
	}
	fmt.Printf("%s:\n", *dir)
	fmt.Printf("  %-14s %d bytes (format v%d, data crc %08x, mmap=%v)\n",
		store.SegmentsFile, segInfo.Size(), hdr.Version, hdr.DataCRC, st.Mapped())
	fmt.Printf("  %-14s %d bytes (schema v%d)\n", store.CatalogFile, catInfo.Size(), cat.SchemaVersion)
	fmt.Printf("  universe       %d bits (%d words/run, %d pages/run of %d B)\n",
		hdr.Universe, hdr.WordsPerRun, hdr.PagesPerRun, hdr.PageSize)
	fmt.Printf("  sources        %d over %d subgoals\n", hdr.Sources, len(cat.Buckets()))
	fmt.Printf("  query          %s\n", cat.Query)
	fmt.Printf("  workload       qlen=%d bucket=%d zones=%d N=%g seed=%d\n",
		cat.Config.QueryLen, cat.Config.BucketSize, cat.Config.Zones, cat.Config.N, cat.Config.Seed)
	if *full {
		for i, r := range cat.Sources {
			fmt.Printf("  [%3d] %-12s bucket=%d zone=%d card=%-6d pages=%d crc=%08x\n",
				i, r.Name, r.Bucket, r.Zone, r.Cardinality, r.Pages, r.CRC)
		}
	}
	return nil
}

func runVerify(args []string) error {
	fs := flag.NewFlagSet("qpstore verify", flag.ExitOnError)
	dir := fs.String("dir", "", "store directory (required)")
	fs.Parse(args)
	if *dir == "" {
		return fmt.Errorf("verify: -dir is required")
	}
	rep, err := store.Verify(*dir)
	if err != nil {
		return err
	}
	fmt.Printf("ok: %d sources, universe %d, %d+%d bytes, %d pages/run, %d overlap pairs checked\n",
		rep.Sources, rep.Universe, rep.SegmentBytes, rep.CatalogBytes, rep.PagesPerRun, rep.OverlapPairs)
	return nil
}
