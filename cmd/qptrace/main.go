// Command qptrace analyzes exported request traces: the NDJSON files
// qpserved -trace-out, qprouter -trace-out, and qporder -trace write
// (one TraceSnapshot per line). It reports the hottest span paths, the
// slowest requests with their critical paths, and the aggregate
// ordering provenance (plans emitted, dominance tests won/lost,
// refinements, splits, evaluations). Snapshots from different processes
// sharing a trace ID — a router hop plus the shard hops it fanned out
// to — are stitched into one fleet-wide trace: the report renders the
// merged critical path across processes and a per-hop self-time
// breakdown (router queueing vs shard execution vs merge). Calibration
// records (qpserved -calib-out) may ride in the same stream; the report
// then appends the last cumulative estimator-calibration snapshot —
// per-source and per-plan q-error, bias, and drift flags.
//
// Usage:
//
//	qptrace traces.ndjson
//	qptrace -top 5 traces.ndjson more-traces.ndjson
//	qpserved -trace-out /dev/stdout ... | qptrace -json -
//
// With no file arguments (or "-") it reads stdin. Any malformed line is
// a hard error: the input is machine-written, so corruption should fail
// loudly.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"

	"qporder/internal/obs"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "qptrace:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		top    = flag.Int("top", 10, "how many spans and slowest requests to keep")
		asJSON = flag.Bool("json", false, "emit the report as JSON")
	)
	flag.Parse()

	var traces []obs.TraceSnapshot
	var calibs []obs.CalibrationRecord
	read := func(r io.Reader, name string) error {
		ts, cs, err := obs.ReadExports(r)
		if err != nil {
			return fmt.Errorf("%s: %w", name, err)
		}
		traces = append(traces, ts...)
		calibs = append(calibs, cs...)
		return nil
	}
	args := flag.Args()
	if len(args) == 0 {
		args = []string{"-"}
	}
	for _, a := range args {
		if a == "-" {
			if err := read(os.Stdin, "stdin"); err != nil {
				return err
			}
			continue
		}
		f, err := os.Open(a)
		if err != nil {
			return err
		}
		err = read(f, a)
		f.Close()
		if err != nil {
			return err
		}
	}
	if len(traces) == 0 && len(calibs) == 0 {
		return fmt.Errorf("no traces in input")
	}

	rep := obs.AnalyzeTraces(traces, *top)
	if len(calibs) > 0 {
		// Calibration snapshots are cumulative; the last one subsumes the
		// rest, so the report carries it alone plus the ingest count.
		rep.CalibrationRecords = len(calibs)
		rep.Calibration = &calibs[len(calibs)-1].Calibration
	}
	if *asJSON {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		return enc.Encode(rep)
	}
	return rep.WriteText(os.Stdout)
}
