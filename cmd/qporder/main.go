// Command qporder is a command-line mediator: it loads a domain file
// (LAV source descriptions with statistics, plus a query), reformulates
// the query with the bucket algorithm, orders the candidate plans with a
// chosen algorithm and utility measure, filters them through the
// soundness test, and prints the top-k sound plans. With -execute it also
// runs the plans against a simulated world and reports answers and cost.
//
// Usage:
//
//	qporder -f domain.qp -algo streamer -measure chain-fail -k 5
//	qporder -f domain.qp -q 'Q(M) :- play-in(ford, M)' -algo greedy -measure linear
//	qporder -f domain.qp -execute
//	qporder -f domain.qp -explain
//	qporder -f domain.qp -trace run.ndjson && qptrace run.ndjson
//	qporder -f domain.qp -execute -calibration
//
// -explain prints, per emitted plan, the ordering provenance: utility
// at selection, dominance tests won and lost, refinements, splits, and
// utility evaluations since the previous plan. -trace exports the run's
// request trace (spans plus provenance) as one NDJSON line for qptrace.
// -calibration (with -execute) pairs the estimator's predictions with
// execution ground truth — per-source Tuples statistics against observed
// result sizes, per-plan utilities against realized answers or cost —
// and prints q-error, bias, and EWMA drift per series after the run.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"qporder/internal/abstraction"
	"qporder/internal/core"
	"qporder/internal/costmodel"
	"qporder/internal/domfile"
	"qporder/internal/execsim"
	"qporder/internal/measure"
	"qporder/internal/obs"
	"qporder/internal/physopt"
	"qporder/internal/planspace"
	"qporder/internal/reformulate"
	"qporder/internal/schema"
	"qporder/internal/store"
)

// indent prefixes every non-empty line of s.
func indent(s, prefix string) string {
	out := ""
	for _, line := range strings.Split(strings.TrimRight(s, "\n"), "\n") {
		out += prefix + line + "\n"
	}
	return out
}

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "qporder:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		file      = flag.String("f", "", "domain file (this or -store is required)")
		storeDir  = flag.String("store", "", "segment/catalog store directory (alternative to -f)")
		qstr      = flag.String("q", "", "query (overrides the file's query)")
		algo      = flag.String("algo", "streamer", "ordering algorithm: greedy, idrips, streamer, pi, exhaustive")
		meas      = flag.String("measure", "chain", "utility: linear, chain, chain-fail, chain-fail-caching, monetary, monetary-caching")
		k         = flag.Int("k", 10, "number of plans to produce")
		bigN      = flag.Float64("N", 50000, "selectivity denominator N of cost measure (2)")
		execute   = flag.Bool("execute", false, "execute the ordered plans against a simulated world")
		physical  = flag.Bool("physical", false, "run plans through the physical optimizer (join order + access methods)")
		seed      = flag.Int64("seed", 1, "seed for the simulated world (-execute)")
		stats     = flag.Bool("stats", false, "report phase spans and pipeline counters to stderr on exit")
		plansOnly = flag.Bool("plans-only", false, "print only the ordered plan queries, one per line (for diffing against qpload -print-plans)")
		explain   = flag.Bool("explain", false, "print per-plan ordering provenance after the plan list")
		traceOut  = flag.String("trace", "", "write the run's trace (spans + provenance) as NDJSON to this file")
		calib     = flag.Bool("calibration", false, "report estimate-vs-actual calibration (q-error, bias, EWMA drift) after the run; needs -execute")
	)
	flag.Parse()
	var dom *domfile.Domain
	switch {
	case *file != "" && *storeDir != "":
		return fmt.Errorf("-f and -store are mutually exclusive")
	case *storeDir != "":
		// The catalog carries everything the ordering pipeline needs
		// besides the bitsets (LAV defs, statistics, the query); the light
		// LoadCatalog path never faults a segment data page.
		cat, q, err := store.LoadCatalog(*storeDir)
		if err != nil {
			return err
		}
		dom = &domfile.Domain{Catalog: cat, Query: q}
	case *file != "":
		f, err := os.Open(*file)
		if err != nil {
			return err
		}
		var perr error
		dom, perr = domfile.Parse(f)
		f.Close()
		if perr != nil {
			return perr
		}
	default:
		return fmt.Errorf("missing -f domain file (or -store directory)")
	}
	var err error
	q := dom.Query
	if *qstr != "" {
		if q, err = schema.ParseQuery(*qstr); err != nil {
			return err
		}
	}
	if q == nil {
		return fmt.Errorf("no query: the file has none and -q was not given")
	}
	if !*plansOnly {
		fmt.Println("query:", q)
	}

	var reg *obs.Registry
	if *stats {
		reg = obs.NewRegistry()
	}
	tr := reg.Tracer()
	// The request trace doubles as the provenance recorder for -explain
	// and as the exported span tree for -trace; nil (the default) keeps
	// the ordering hot path allocation-identical to an untraced run.
	var rt *obs.Trace
	if *explain || *traceOut != "" {
		rt = obs.NewTrace("qporder")
		rt.SetAttr("query", q.String())
		rt.SetAttr("algorithm", *algo)
		rt.SetAttr("measure", *meas)
	}

	refSpan := obs.StartSpan(tr, "qporder/reformulate")
	refTSpan := rt.StartSpan("qporder/reformulate")
	buckets, err := reformulate.BuildBuckets(q, dom.Catalog)
	if err != nil {
		return err
	}
	pd := reformulate.NewPlanDomain(buckets, dom.Catalog)
	refTSpan.End()
	refSpan.End()
	if !*plansOnly {
		fmt.Printf("plan space: %d candidate plans\n", pd.Space.Size())
	}

	m, err := buildMeasure(pd, *meas, *bigN)
	if err != nil {
		return err
	}
	o, err := buildOrderer(pd, m, *algo)
	if err != nil {
		return err
	}
	core.Instrument(o, reg)
	core.SetTrace(o, rt)

	var engine *execsim.Engine
	answers := execsim.NewAnswerSet()
	if *execute {
		engine, err = simulatedEngine(dom, *seed)
		if err != nil {
			return err
		}
		engine.Instrument(reg)
	}
	var cal *obs.Calibration
	if *calib {
		if engine == nil {
			fmt.Fprintln(os.Stderr, "qporder: -calibration needs -execute for ground truth; ignoring")
		} else {
			cal = obs.NewCalibration(obs.CalibConfig{})
			engine.SetCalibration(cal)
		}
	}

	produced := 0
	for produced < *k {
		ordSpan := obs.StartSpan(tr, "qporder/order")
		ordTSpan := rt.StartSpan("qporder/order")
		plan, pq, utility, ok, err := pd.SoundNext(o)
		ordTSpan.End()
		ordSpan.End()
		if err != nil {
			return err
		}
		if !ok {
			break
		}
		produced++
		if *plansOnly {
			fmt.Println(pq)
		} else {
			fmt.Printf("#%-3d u=%-12.6g %-20s %s\n", produced, utility, pd.FormatPlan(plan), pq)
		}
		var pp *physopt.Plan
		if *physical {
			cached := func(string) bool { return false }
			pp, err = physopt.Optimize(pq, dom.Catalog, physopt.Params{N: *bigN, CachedScan: cached})
			if err != nil {
				return err
			}
			fmt.Print(indent(pp.String(), "     "))
		}
		if engine != nil {
			costBefore := engine.Cost
			execStart := time.Now()
			execSpan := obs.StartSpan(tr, "qporder/execute")
			execTSpan := rt.StartSpan("qporder/execute")
			var out []schema.Atom
			if pp != nil {
				out, err = engine.ExecutePhysical(pp)
			} else {
				out, err = engine.ExecutePlan(pq)
			}
			execTSpan.End()
			execSpan.End()
			execWall := time.Since(execStart)
			if err != nil {
				return err
			}
			fresh := answers.Add(out)
			rt.AnnotatePlan(plan.Key(), fresh, int64(execWall))
			if cal != nil {
				est, act := obs.PairPlanEstimate(utility, fresh, engine.Cost-costBefore)
				cal.ObservePlan(*meas+"/"+*algo, est, act, fresh, engine.Cost-costBefore, execWall)
			}
			fmt.Printf("     +%d answers (total %d), cumulative cost %.1f\n",
				fresh, answers.Len(), engine.Cost)
		}
	}
	if !*plansOnly {
		if produced == 0 {
			fmt.Println("no sound plans")
		}
		fmt.Printf("plans evaluated: %d\n", o.Context().Evals())
	}
	if engine != nil {
		fmt.Printf("\nanswers (%d):\n%s", answers.Len(), answers)
	}
	if cal != nil {
		fmt.Println("--- calibration ---")
		cs := cal.Snapshot()
		if cs.Empty() {
			fmt.Println("no observations (no plans executed)")
		} else if err := cs.WriteText(os.Stdout); err != nil {
			return err
		}
	}
	if *explain {
		fmt.Println("--- explain (per emitted plan; deltas since the previous plan) ---")
		for _, p := range rt.Plans() {
			fmt.Printf("#%-3d u=%-12.6g dom_won=%-4d dom_lost=%-4d refinements=%-4d splits=%-4d evals=%-5d %s\n",
				p.Index+1, p.Utility, p.DomWon, p.DomLost, p.Refinements, p.Splits, p.Evals, p.Plan)
		}
	}
	if *traceOut != "" {
		if err := writeTrace(*traceOut, rt); err != nil {
			return err
		}
	}
	if reg != nil {
		fmt.Fprintln(os.Stderr, "--- stats ---")
		if err := reg.WriteText(os.Stderr); err != nil {
			return err
		}
	}
	return nil
}

// writeTrace appends the finished trace as one NDJSON line, the format
// qpserved -trace-out uses and qptrace ingests.
func writeTrace(path string, rt *obs.Trace) error {
	snap := rt.Finish()
	b, err := json.Marshal(snap)
	if err != nil {
		return err
	}
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return err
	}
	defer f.Close()
	_, err = f.Write(append(b, '\n'))
	return err
}

func buildMeasure(pd *reformulate.PlanDomain, name string, n float64) (measure.Measure, error) {
	switch name {
	case "linear":
		return costmodel.NewLinearCost(pd.Entries), nil
	case "chain":
		return costmodel.NewChainCost(pd.Entries, costmodel.Params{N: n}), nil
	case "chain-fail":
		return costmodel.NewChainCost(pd.Entries, costmodel.Params{N: n, Failure: true}), nil
	case "chain-fail-caching":
		return costmodel.NewChainCost(pd.Entries, costmodel.Params{N: n, Failure: true, Caching: true}), nil
	case "monetary":
		return costmodel.NewMonetaryPerTuple(pd.Entries, costmodel.Params{N: n}), nil
	case "monetary-caching":
		return costmodel.NewMonetaryPerTuple(pd.Entries, costmodel.Params{N: n, Caching: true}), nil
	default:
		return nil, fmt.Errorf("unknown measure %q", name)
	}
}

func buildOrderer(pd *reformulate.PlanDomain, m measure.Measure, algo string) (core.Orderer, error) {
	spaces := []*planspace.Space{pd.Space}
	heur := abstraction.ByAccessCost(pd.Entries)
	switch algo {
	case "greedy":
		return core.NewGreedy(spaces, m)
	case "idrips":
		return core.NewIDrips(spaces, m, heur), nil
	case "streamer":
		return core.NewStreamer(spaces, m, heur)
	case "pi":
		return core.NewPI(spaces, m), nil
	case "exhaustive":
		return core.NewExhaustive(spaces, m), nil
	default:
		return nil, fmt.Errorf("unknown algorithm %q", algo)
	}
}

// simulatedEngine builds a world covering every relation mentioned by the
// source descriptions and derives incomplete source contents.
func simulatedEngine(dom *domfile.Domain, seed int64) (*execsim.Engine, error) {
	arity := make(map[string]int)
	for _, src := range dom.Catalog.Sources() {
		for _, a := range src.Def.Body {
			if prev, ok := arity[a.Pred]; ok && prev != a.Arity() {
				return nil, fmt.Errorf("relation %s used with arities %d and %d", a.Pred, prev, a.Arity())
			}
			arity[a.Pred] = a.Arity()
		}
	}
	var rels []execsim.RelationSpec
	for name, ar := range arity {
		rels = append(rels, execsim.RelationSpec{Name: name, Arity: ar})
	}
	world := execsim.GenerateWorld(execsim.WorldConfig{
		Relations:         rels,
		TuplesPerRelation: 100,
		DomainSize:        15,
		Seed:              seed,
	})
	store := execsim.PopulateSources(dom.Catalog, world, 0.8, seed+1)
	eng := execsim.NewEngine(dom.Catalog, store)
	eng.EnableFailures(seed + 2)
	return eng, nil
}
