// Command qpserved is the serving daemon: it loads a domain file (LAV
// source descriptions plus statistics), builds the simulated world once,
// and serves queries over HTTP. POST /v1/query streams NDJSON events —
// the chosen plans best-first, their answers as they arrive, and a final
// summary — honoring per-request k, deadline, and algorithm/measure
// selection. Reformulation work is cached across requests keyed by the
// query's canonical form. GET /metrics and GET /healthz expose the
// instrumentation registry and drain state. Every request runs under a
// W3C-traceparent-compatible request trace: GET /debug/requests serves
// the always-on flight recorder (recent, slowest, and errored request
// traces), -trace-out exports finished traces as NDJSON for offline
// analysis with qptrace, and per-request log lines on stderr are
// correlated by trace ID. The daemon also tracks estimator calibration —
// estimate-vs-actual q-error, bias, and EWMA drift per source and plan
// series — served at GET /debug/calibration, exported per request with
// -calib-out, and scrapeable alongside every registry instrument at
// GET /metrics?format=openmetrics (OpenMetrics text exposition). The
// -slo-* flags arm an SLO monitor: rolling-window TTFA and full-session
// burn rates at GET /debug/slo, slo.* gauges on the registry, and
// tail sampling of -trace-out (only slow, errored, or budget-burning
// sessions export; others count slo.sampled_dropped).
//
// Usage:
//
//	qpserved -f domain.qp -addr :8091
//	qpserved -f domain.qp -addr 127.0.0.1:0 -seed 7 -max-inflight 16
//
// On SIGINT/SIGTERM the daemon drains: /healthz flips to 503, new
// queries are refused, and in-flight streams run to completion (bounded
// by -drain-timeout) before the process exits.
package main

import (
	"context"
	"errors"
	"expvar"
	"flag"
	"fmt"
	"log/slog"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"qporder/internal/domfile"
	"qporder/internal/obs"
	"qporder/internal/server"
	"qporder/internal/store"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "qpserved:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		file         = flag.String("f", "", "domain file (this or -store is required)")
		storeDir     = flag.String("store", "", "segment/catalog store directory (alternative to -f)")
		addr         = flag.String("addr", "127.0.0.1:8091", "listen address (port 0 picks a free port)")
		seed         = flag.Int64("seed", 1, "seed for the simulated world")
		bigN         = flag.Float64("N", 50000, "selectivity denominator N of the cost measures")
		maxInflight  = flag.Int("max-inflight", 8, "concurrently executing sessions")
		maxQueue     = flag.Int("max-queue", 32, "sessions waiting for a slot before 503")
		cacheSize    = flag.Int("cache-sessions", 128, "reformulation session-cache entries")
		defaultK     = flag.Int("k", 10, "default per-request plan budget")
		maxK         = flag.Int("max-k", 1000, "maximum per-request plan budget")
		drainTimeout = flag.Duration("drain-timeout", 30*time.Second, "shutdown grace for in-flight streams")
		flight       = flag.Int("flight", 64, "flight-recorder recent-request entries (/debug/requests)")
		traceOut     = flag.String("trace-out", "", "append finished request traces to this NDJSON file (qptrace input)")
		calibOut     = flag.String("calib-out", "", "append per-request calibration snapshots to this NDJSON file (may equal -trace-out; qptrace ingests the mixed stream)")
		logRequests  = flag.Bool("log-requests", true, "log one structured line per request to stderr, correlated by trace ID")
		sloTTFA      = flag.Duration("slo-ttfa", 0, "time-to-first-answer objective (0 disables)")
		sloFull      = flag.Duration("slo-full", 0, "full-session latency objective (0 disables)")
		sloTarget    = flag.Float64("slo-target", 0.99, "fraction of sessions that must meet the objectives")
		sloWindow    = flag.Duration("slo-window", 5*time.Minute, "rolling window for burn-rate accounting")
	)
	flag.Parse()
	var dom *domfile.Domain
	switch {
	case *file != "" && *storeDir != "":
		return fmt.Errorf("-f and -store are mutually exclusive")
	case *storeDir != "":
		// Startup loads the persisted statistics catalog instead of
		// synthesizing a domain; LoadCatalog checksums the envelope but
		// never faults a segment data page.
		cat, q, err := store.LoadCatalog(*storeDir)
		if err != nil {
			return err
		}
		dom = &domfile.Domain{Catalog: cat, Query: q}
		fmt.Printf("loaded store %s: %d sources\n", *storeDir, cat.Len())
	case *file != "":
		f, err := os.Open(*file)
		if err != nil {
			return err
		}
		var perr error
		dom, perr = domfile.Parse(f)
		f.Close()
		if perr != nil {
			return perr
		}
	default:
		return fmt.Errorf("missing -f domain file (or -store directory)")
	}

	reg := obs.NewRegistry()
	cfg := server.Config{
		Catalog:       dom.Catalog,
		Seed:          *seed,
		N:             *bigN,
		MaxInflight:   *maxInflight,
		MaxQueue:      *maxQueue,
		CacheSessions: *cacheSize,
		DefaultK:      *defaultK,
		MaxK:          *maxK,
		Reg:           reg,
		FlightEntries: *flight,
		SLO: obs.NewSLOMonitor(obs.SLOConfig{
			TTFAObjective: *sloTTFA,
			FullObjective: *sloFull,
			Target:        *sloTarget,
			Window:        *sloWindow,
		}),
	}
	if *logRequests {
		cfg.Logger = slog.New(slog.NewTextHandler(os.Stderr, nil))
	}
	if *traceOut != "" {
		tf, err := os.OpenFile(*traceOut, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			return err
		}
		defer tf.Close()
		cfg.TraceOut = tf
	}
	if *calibOut != "" {
		if *calibOut == *traceOut {
			// Same file: share the handle so trace and calibration lines
			// interleave whole (the server serializes both writers).
			cfg.CalibOut = cfg.TraceOut
		} else {
			cf, err := os.OpenFile(*calibOut, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
			if err != nil {
				return err
			}
			defer cf.Close()
			cfg.CalibOut = cf
		}
	}
	srv, err := server.New(cfg)
	if err != nil {
		return err
	}
	expvar.Publish("qporder", reg)

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	// The bound address goes to stdout first so scripts starting the
	// daemon on port 0 can scrape the port.
	fmt.Printf("listening on %s\n", ln.Addr())
	httpSrv := &http.Server{Handler: srv.Handler()}

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()
	errCh := make(chan error, 1)
	go func() { errCh <- httpSrv.Serve(ln) }()

	select {
	case err := <-errCh:
		return err
	case <-ctx.Done():
	}
	fmt.Println("draining")
	srv.SetDraining(true)
	shutdownCtx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	if err := httpSrv.Shutdown(shutdownCtx); err != nil {
		return fmt.Errorf("drain incomplete: %w", err)
	}
	if err := <-errCh; err != nil && !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	fmt.Println("drained cleanly")
	return nil
}
