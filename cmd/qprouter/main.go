// Command qprouter is the stateless fleet front end over a set of
// qpserved shards. It routes each POST /v1/query to the shard owning the
// query's canonical key on a consistent-hash ring (so syntactic variants
// of a query always land on the same shard's reformulation cache), and
// with "scatter": true it instead partitions the PI plan space across
// every healthy shard and merges the per-shard streams back into the
// canonical utility order — byte-identical plan and answers events to a
// single qpserved executing the same request.
//
// The router holds no ordering state: kill it and start another with the
// same -shards list and affinity is unchanged (the ring is a pure
// function of the shard set). It polls every shard's /healthz; draining
// or dead shards leave the ring within one probe interval, and session
// setup retries on the next ring node with bounded doubling backoff.
// Client traceparent headers are forwarded, so a fleet hop stays inside
// one W3C trace. With -trace-out the router goes further: it runs its
// own request trace per session (admission, shard pick, proxy/slice,
// merge spans), asks every shard for its span tree via the stream's
// spans trailer, and appends the unified multi-process export — router
// plus shard snapshots under one trace ID — as NDJSON that qptrace
// stitches into a fleet-wide critical path. GET /metrics serves the
// fleet.* instruments in text or JSON form; ?format=openmetrics
// federates, merging every healthy shard's exposition (re-labeled
// shard="<index>") with the router's own. The -slo-* flags arm an SLO
// monitor — rolling-window burn rates at GET /debug/slo and slo.*
// gauges — which also tail-samples -trace-out to slow, errored, or
// budget-burning sessions. GET /healthz reports the fleet view.
//
// Usage:
//
//	qprouter -shards http://127.0.0.1:8091,http://127.0.0.1:8092 -addr :8090
//
// On SIGINT/SIGTERM the router drains: /healthz flips to 503 and
// in-flight streams run to completion (bounded by -drain-timeout).
package main

import (
	"context"
	"errors"
	"expvar"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"qporder/internal/fleet"
	"qporder/internal/obs"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "qprouter:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		shards       = flag.String("shards", "", "comma-separated qpserved base URLs (required)")
		addr         = flag.String("addr", "127.0.0.1:8090", "listen address (port 0 picks a free port)")
		replicas     = flag.Int("replicas", 64, "virtual nodes per shard on the hash ring")
		healthEvery  = flag.Duration("health-interval", time.Second, "/healthz probe period")
		healthWithin = flag.Duration("health-timeout", 2*time.Second, "per-probe deadline (floored at -health-interval)")
		retries      = flag.Int("retries", 3, "session-setup attempts across ring nodes")
		backoff      = flag.Duration("backoff", 25*time.Millisecond, "base retry backoff (doubles per attempt, capped at 1s)")
		defaultK     = flag.Int("k", 10, "default plan budget for scatter requests that omit k (match the shards' -k)")
		drainTimeout = flag.Duration("drain-timeout", 30*time.Second, "shutdown grace for in-flight streams")
		quiet        = flag.Bool("quiet", false, "suppress reroute/health log lines on stderr")
		traceOut     = flag.String("trace-out", "", "append unified fleet traces (router + shard spans) to this NDJSON file (qptrace input)")
		sloTTFA      = flag.Duration("slo-ttfa", 0, "time-to-first-answer objective (0 disables)")
		sloFull      = flag.Duration("slo-full", 0, "full-session latency objective (0 disables)")
		sloTarget    = flag.Float64("slo-target", 0.99, "fraction of sessions that must meet the objectives")
		sloWindow    = flag.Duration("slo-window", 5*time.Minute, "rolling window for burn-rate accounting")
	)
	flag.Parse()
	if *shards == "" {
		return fmt.Errorf("missing -shards list")
	}
	var urls []string
	for _, s := range strings.Split(*shards, ",") {
		if s = strings.TrimSpace(s); s != "" {
			urls = append(urls, s)
		}
	}

	reg := obs.NewRegistry()
	cfg := fleet.Config{
		Shards:         urls,
		Replicas:       *replicas,
		HealthInterval: *healthEvery,
		HealthTimeout:  *healthWithin,
		Retries:        *retries,
		Backoff:        *backoff,
		DefaultK:       *defaultK,
		Registry:       reg,
		SLO: obs.NewSLOMonitor(obs.SLOConfig{
			TTFAObjective: *sloTTFA,
			FullObjective: *sloFull,
			Target:        *sloTarget,
			Window:        *sloWindow,
		}),
	}
	if *traceOut != "" {
		tf, err := os.OpenFile(*traceOut, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			return err
		}
		defer tf.Close()
		cfg.TraceOut = tf
	}
	if !*quiet {
		cfg.Logf = func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, format+"\n", args...)
		}
	}
	rt, err := fleet.New(cfg)
	if err != nil {
		return err
	}
	defer rt.Close()
	expvar.Publish("qprouter", reg)

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	// The bound address goes to stdout first so scripts starting the
	// router on port 0 can scrape the port.
	fmt.Printf("listening on %s\n", ln.Addr())
	httpSrv := &http.Server{Handler: rt.Handler()}

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()
	errCh := make(chan error, 1)
	go func() { errCh <- httpSrv.Serve(ln) }()

	select {
	case err := <-errCh:
		return err
	case <-ctx.Done():
	}
	fmt.Println("draining")
	rt.SetDraining(true)
	shutdownCtx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	if err := httpSrv.Shutdown(shutdownCtx); err != nil {
		return fmt.Errorf("drain incomplete: %w", err)
	}
	if err := <-errCh; err != nil && !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	fmt.Println("drained cleanly")
	return nil
}
